"""Unit tests for role sets (Definition 3.1 / Example 3.1)."""


from repro.core.rolesets import (
    EMPTY_ROLE_SET,
    RoleSet,
    count_role_sets,
    enumerate_role_sets,
    role_set_of,
    symbol_map,
)
from repro.workloads import phd, university


class TestRoleSet:
    def test_label_and_repr(self):
        assert EMPTY_ROLE_SET.label() == "∅"
        assert RoleSet({"B", "A"}).label() == "[A+B]"
        assert repr(RoleSet({"A"})) == "[A]"

    def test_is_a_frozenset(self):
        assert RoleSet({"A"}) == frozenset({"A"})
        assert hash(RoleSet({"A"})) == hash(frozenset({"A"}))

    def test_role_set_of_closes_upwards(self):
        schema = university.schema()
        assert role_set_of(schema, {university.GRAD_ASSIST}) == university.ROLE_G
        assert role_set_of(schema, {university.STUDENT}) == university.ROLE_S


class TestEnumeration:
    def test_figure_1_has_the_example_3_1_role_sets(self):
        role_sets = set(enumerate_role_sets(university.schema()))
        assert role_sets == set(university.ROLE_SETS)

    def test_without_empty(self):
        role_sets = enumerate_role_sets(university.schema(), include_empty=False)
        assert EMPTY_ROLE_SET not in role_sets
        assert len(role_sets) == 5

    def test_phd_schema(self):
        # Root plus any subset of the three sibling phases: 8 non-empty role sets.
        assert count_role_sets(phd.schema(), include_empty=False) == 8

    def test_component_argument(self):
        from repro.model.schema import DatabaseSchema

        schema = DatabaseSchema({"A", "B"}, set(), {"A": set(), "B": set()})
        only_a = enumerate_role_sets(schema, component={"A"})
        assert set(only_a) == {EMPTY_ROLE_SET, RoleSet({"A"})}
        both = enumerate_role_sets(schema)
        assert RoleSet({"B"}) in both

    def test_symbol_map(self):
        mapping = symbol_map(university.ROLE_SETS)
        assert mapping["[PERSON]"] == university.ROLE_P
        assert mapping["0"] == EMPTY_ROLE_SET
