"""Quickstart: model a schema, run transactions, analyse migration patterns.

Builds the banking workload (interest vs. regular checking accounts from the
paper's introduction), executes a few transactions to show object migration
in action, then uses the static analysis to check two dynamic constraints --
one the transactions satisfy, one they violate (with a counterexample
pattern).

Run with:  python examples/quickstart.py
"""

from repro import Assignment, DatabaseInstance, SLMigrationAnalysis, check_constraint
from repro.language.semantics import run_sequence
from repro.core.patterns import pattern_of_run
from repro.workloads import banking


def main() -> None:
    schema = banking.schema()
    transactions = banking.transactions()

    print("=== Schema ===")
    print(schema)
    print()

    # ------------------------------------------------------------------ #
    # Run a concrete account life cycle.
    # ------------------------------------------------------------------ #
    d0 = DatabaseInstance.empty(schema)
    steps = [
        (transactions["open_interest_checking"], Assignment(number="12-345", owner="Ada", rate=3)),
        (transactions["convert_to_regular"], Assignment(number="12-345", fee="flat")),
        (transactions["convert_to_interest"], Assignment(number="12-345", rate=2)),
        (transactions["close_account"], Assignment(number="12-345")),
    ]
    final, trace = run_sequence(d0, steps)
    account = sorted(trace[0].all_objects())[0]
    print("=== A concrete account life cycle ===")
    for step, instance in zip(steps, trace):
        print(f"after {step[0].name:<28} role set = {sorted(instance.role_set(account))}")
    print("migration pattern:", pattern_of_run(account, trace))
    print()

    # ------------------------------------------------------------------ #
    # Static analysis: the families of all migration patterns.
    # ------------------------------------------------------------------ #
    analysis = SLMigrationAnalysis(transactions)
    print("=== Migration-pattern analysis (Theorem 3.2) ===")
    print("migration graph:", analysis.migration_graph().stats())
    for kind in ("immediate_start", "proper"):
        family = analysis.pattern_family(kind)
        sample = ", ".join(repr(p) for p in family.sample(max_length=3, limit=6))
        print(f"{kind:>16} patterns (sample): {sample}")
    print()

    # ------------------------------------------------------------------ #
    # Dynamic constraints as migration inventories (Corollary 3.3).
    # ------------------------------------------------------------------ #
    print("=== Checking dynamic constraints ===")
    ok = check_constraint(analysis, banking.checking_role_inventory())
    print("'accounts always play a checking role':", ok.summary())
    bad = check_constraint(analysis, banking.no_downgrade_inventory())
    print("'interest accounts are never downgraded':", bad.summary())


if __name__ == "__main__":
    main()
