"""Unit tests for database schemas and specialization graphs (Definition 2.1)."""

import pytest

from repro.model.errors import SchemaError
from repro.model.schema import DatabaseSchema
from repro.workloads import university


@pytest.fixture
def figure1():
    return university.schema()


class TestValidation:
    def test_requires_at_least_one_class(self):
        with pytest.raises(SchemaError):
            DatabaseSchema(set(), set(), {})

    def test_rejects_unknown_classes_in_isa(self):
        with pytest.raises(SchemaError):
            DatabaseSchema({"A"}, {("A", "B")}, {"A": set()})

    def test_rejects_self_loop(self):
        with pytest.raises(SchemaError):
            DatabaseSchema({"A"}, {("A", "A")}, {"A": set()})

    def test_rejects_cycle(self):
        with pytest.raises(SchemaError):
            DatabaseSchema({"A", "B"}, {("A", "B"), ("B", "A")}, {})

    def test_rejects_overlapping_attribute_sets(self):
        with pytest.raises(SchemaError):
            DatabaseSchema({"A", "B"}, {("B", "A")}, {"A": {"X"}, "B": {"X"}})

    def test_rejects_attributes_for_unknown_class(self):
        with pytest.raises(SchemaError):
            DatabaseSchema({"A"}, set(), {"A": set(), "B": {"X"}})

    def test_rejects_weakly_connected_pair_without_common_ancestor(self):
        # A <- C -> B: A and B are weakly connected but have no common ancestor.
        with pytest.raises(SchemaError):
            DatabaseSchema({"A", "B", "C"}, {("C", "A"), ("C", "B")}, {})

    def test_accepts_figure_1(self, figure1):
        assert figure1.is_weakly_connected_schema()

    def test_accepts_multiple_components(self):
        schema = DatabaseSchema({"A", "B"}, set(), {"A": {"X"}, "B": {"Y"}})
        assert len(schema.weakly_connected_components()) == 2


class TestHierarchyAccessors:
    def test_isa_roots(self, figure1):
        assert figure1.isa_roots() == {university.PERSON}
        assert figure1.is_isa_root(university.PERSON)
        assert not figure1.is_isa_root(university.STUDENT)

    def test_parents_children(self, figure1):
        assert figure1.parents(university.GRAD_ASSIST) == {university.EMPLOYEE, university.STUDENT}
        assert figure1.children(university.PERSON) == {university.EMPLOYEE, university.STUDENT}

    def test_ancestors_descendants(self, figure1):
        assert figure1.ancestors(university.GRAD_ASSIST) == {
            university.GRAD_ASSIST,
            university.EMPLOYEE,
            university.STUDENT,
            university.PERSON,
        }
        assert figure1.descendants(university.PERSON) == figure1.classes

    def test_isa_star(self, figure1):
        assert figure1.isa_star(university.GRAD_ASSIST, university.PERSON)
        assert figure1.isa_star(university.PERSON, university.PERSON)
        assert not figure1.isa_star(university.PERSON, university.STUDENT)

    def test_root_of(self, figure1):
        assert figure1.root_of(university.GRAD_ASSIST) == university.PERSON

    def test_require_class(self, figure1):
        with pytest.raises(SchemaError):
            figure1.require_class("NOPE")
        assert "NOPE" not in figure1
        assert university.PERSON in figure1


class TestAttributes:
    def test_direct_attributes(self, figure1):
        assert figure1.attributes_of(university.PERSON) == {"SSN", "Name"}
        assert figure1.attributes_of(university.GRAD_ASSIST) == {"PctAppoint"}

    def test_inherited_attributes(self, figure1):
        assert figure1.all_attributes_of(university.GRAD_ASSIST) == {
            "SSN",
            "Name",
            "Salary",
            "WorksIn",
            "Major",
            "FirstEnroll",
            "PctAppoint",
        }

    def test_attributes_of_role_set(self, figure1):
        attrs = figure1.attributes_of_role_set({university.PERSON, university.STUDENT})
        assert attrs == {"SSN", "Name", "Major", "FirstEnroll"}

    def test_owner_of_attribute(self, figure1):
        assert figure1.owner_of_attribute("Salary") == university.EMPLOYEE
        assert figure1.owner_of_attribute("Nope") is None


class TestConnectivityAndRoleSets:
    def test_weakly_connected(self, figure1):
        assert figure1.weakly_connected(university.STUDENT, university.EMPLOYEE)

    def test_component_of(self, figure1):
        assert figure1.component_of(university.STUDENT) == figure1.classes

    def test_restrict_to_component(self):
        schema = DatabaseSchema({"A", "B"}, set(), {"A": {"X"}, "B": {"Y"}})
        component = schema.component_of("A")
        restricted = schema.restrict_to_component(component)
        assert restricted.classes == {"A"}
        with pytest.raises(SchemaError):
            schema.restrict_to_component({"A", "B"})

    def test_role_set_closure(self, figure1):
        closure = figure1.role_set_closure({university.GRAD_ASSIST})
        assert closure == figure1.classes

    def test_is_role_set(self, figure1):
        assert figure1.is_role_set(frozenset())
        assert figure1.is_role_set({university.PERSON, university.STUDENT})
        assert not figure1.is_role_set({university.STUDENT})  # not isa-closed
        assert not figure1.is_role_set({"NOPE"})

    def test_equality_and_hash(self, figure1):
        assert figure1 == university.schema()
        assert hash(figure1) == hash(university.schema())
        assert figure1 != DatabaseSchema({"A"}, set(), {"A": set()})
