"""Cross-layer differential fuzzing: every execution path must agree.

The engine now has six ways to answer "does this history satisfy this
spec" -- the fused product kernel (``check_batch`` / ``check_batch_all``),
the per-spec cursor paths (``HistoryCursor`` / ``CursorTable``), the
streaming session (``StreamChecker``), the one-shot subset-construction
oracle (``DFA.accepts``), a snapshot→restore round trip of the streaming
session, and, since this PR, the numpy :class:`~repro.engine.vector.
VectorKernel` (batch and streaming) -- plus a process-pool sharding
backend.  Each is implemented independently enough to disagree in
interesting ways, so this suite drives all of them with seeded random
specs (random schemas → random role-set regexes) over seeded random
streams (spec walks, uniform noise, alien symbols) and asserts
**bit-identical verdicts** on every object:

* 200 seeded cases per tier-1 run (``--fuzz-rounds`` multiplies the count;
  the nightly CI job runs 10x), each case covering serial batch, fused
  batch, cursors, DFA oracle, streaming, mid-stream snapshot/restore into
  the same engine, and restore into a *fresh* engine (the process-restart
  simulation, exercising fingerprint validation and alphabet re-encoding);
* when numpy is importable, the vector kernel over the same case: batch
  verdicts, a vector stream snapshotted mid-run and restored under *both*
  kernel kinds (the wire payload is kind-portable), a fused snapshot
  restored under the vector kernel, and a mid-stream re-registration that
  translates live vector state columns through the new kernel;
* LRU eviction pressure mid-stream (single-entry caches on a rotating
  subset of cases);
* process-pool executor agreement with the serial path, including the
  worker-side kernel cache, alternating kernel kinds so both the zlib and
  the raw buffer-protocol shard payloads cross the pickle boundary;
* the ``enforce=True`` admissibility gate (both kernel kinds) against an
  independent DFA-walk oracle with its own backward-reachability doomed
  set: the gate's rejected event indices must equal the oracle's fatal
  indices exactly, an enforced stream must never hold a doomed object, and
  ``reject_batch`` must raise on the oracle's *first* fatal index leaving
  the session untouched.

The fused paths are pinned with ``kernel="fused"`` so they stay exercised
even though ``kernel="auto"`` now prefers the vector kernel.  A failure
message always carries the case seed, so any disagreement is reproducible
with one parametrized rerun.
"""

from __future__ import annotations

import random

import pytest

from repro.core.rolesets import RoleSet, enumerate_role_sets
from repro.engine import (
    HAVE_NUMPY,
    EnforcementError,
    HistoryCheckerEngine,
    HistoryCursor,
    ProcessPoolBackend,
)
from repro.workloads import generators

BASE_SEED = 0x5EED
BASE_CASES = 200

ALIEN = RoleSet({"ALIEN_CLASS"})


def _random_case(seed):
    """``(name -> NFA, histories)`` for one seeded fuzz case."""
    rng = random.Random(seed)
    schema = generators.random_schema(classes=rng.choice([3, 4, 5]), rng=rng)
    role_sets = list(enumerate_role_sets(schema))
    specs = {}
    for index in range(rng.choice([1, 2, 3])):
        regex = generators.random_role_set_regex(schema, size=rng.choice([3, 4, 5, 6]), rng=rng)
        specs[f"spec{index}"] = regex.to_nfa(role_sets)
    guide = next(iter(specs.values()))
    histories = []
    for _ in range(rng.randrange(4, 16)):
        if rng.random() < 0.5:
            history = next(
                generators.spec_walk_histories(
                    guide, objects=1, mean_length=rng.randrange(2, 8), noise=0.2, rng=rng
                )
            )
        else:
            history = next(
                generators.random_histories(
                    role_sets, objects=1, mean_length=rng.randrange(2, 8), rng=rng
                )
            )
        if rng.random() < 0.1:
            position = rng.randrange(len(history) + 1)
            history = history[:position] + (ALIEN,) + history[position:]
        histories.append(history)
    return specs, histories


def _oracle(specs, histories):
    """Ground truth: one-shot subset construction + DFA.accepts per history."""
    verdicts = {}
    for name, nfa in specs.items():
        dfa = nfa.determinize()
        verdicts[name] = [dfa.accepts(history) for history in histories]
    return verdicts


def _register_all(engine, specs):
    for name, nfa in specs.items():
        engine.add_spec(name, nfa)


_DEAD = object()


def _enforcement_oracle(specs, events):
    """Ground truth for the ``enforce=True`` gate, independent of the engine.

    Walks the event stream with one DFA per spec, using a doomed set computed
    here by backward reachability over ``dfa.transitions`` (not the compiled
    tables' ``doomed`` vectors).  An event is fatal iff *any* spec's successor
    state cannot reach acceptance -- symbols outside a DFA's alphabet count as
    doomed successors.  Fatal events do not advance state (the gate's
    skip-and-continue semantics).  Returns the sorted fatal indices.
    """
    machines = {}
    for name, nfa in specs.items():
        dfa = nfa.determinize()
        incoming = {}
        for (state, symbol), target in dfa.transitions.items():
            incoming.setdefault(target, []).append(state)
        salvageable = set(dfa.accepting_states)
        frontier = list(salvageable)
        while frontier:
            state = frontier.pop()
            for previous in incoming.get(state, ()):
                if previous not in salvageable:
                    salvageable.add(previous)
                    frontier.append(previous)
        machines[name] = (dfa, salvageable)
    states = {}
    fatal = []
    for index, (object_id, symbol) in enumerate(events):
        current = states.setdefault(
            object_id, {name: dfa.initial_state for name, (dfa, _) in machines.items()}
        )
        successors = {}
        for name, (dfa, salvageable) in machines.items():
            if symbol not in dfa.alphabet:
                successors[name] = _DEAD
                continue
            nxt = dfa.delta(current[name], symbol)
            successors[name] = nxt if nxt in salvageable else _DEAD
        if _DEAD in successors.values():
            fatal.append(index)
        else:
            current.update(successors)
    return fatal


def _check_enforcement(kind, specs, events, oracle_fatal, tag):
    """The enforce=True gate under ``kind`` agrees with the DFA-walk oracle."""
    engine = HistoryCheckerEngine(kernel=kind)
    _register_all(engine, specs)
    # Specs with an empty language doom every object from its very first
    # event; the gate rejects everything, but untouched objects legitimately
    # sit in the (doomed) initial state, so exempt them from the never-doomed
    # scan below.
    nonempty = [
        name for name in specs if not engine.compiled(name).is_doomed(engine.compiled(name).initial)
    ]

    stream = engine.open_stream(record=True)
    rejected = []
    chunk = max(1, len(events) // 3)
    for start in range(0, len(events), chunk):
        piece = events[start : start + chunk]
        report = stream.feed_events(piece, enforce=True)
        assert int(report) + len(report.rejected) == len(piece), (tag, kind)
        rejected.extend(start + record.index for record in report.rejected)
    assert rejected == oracle_fatal, (tag, kind, "gate vs oracle fatal indices")
    assert stream.events_seen == len(events) - len(oracle_fatal), (tag, kind)
    # An enforced stream never reports a doomed verdict.
    for name in nonempty:
        for object_id in stream.objects(name):
            assert not stream.doomed(name, object_id), (tag, kind, name, object_id)

    # reject_batch is all-or-nothing: it raises on the oracle's *first* fatal
    # index and leaves the session untouched.
    batch_stream = engine.open_stream(record=True)
    if oracle_fatal:
        with pytest.raises(EnforcementError) as caught:
            batch_stream.feed_events(events, enforce=True, policy="reject_batch")
        assert caught.value.index == oracle_fatal[0], (tag, kind)
        assert batch_stream.events_seen == 0, (tag, kind)
    else:
        report = batch_stream.feed_events(events, enforce=True, policy="reject_batch")
        assert int(report) == len(events) and not report.rejected, (tag, kind)


def _check_one_case(case_seed, fresh_restore):
    specs, histories = _random_case(case_seed)
    expected = _oracle(specs, histories)
    tag = f"seed={case_seed}"

    # A single-entry spec cache on every third case keeps eviction-and-
    # deterministic-recompile in the differential loop, not just in a
    # dedicated unit test.
    cache_size = 1 if case_seed % 3 == 0 else 64
    engine = HistoryCheckerEngine(cache_size=cache_size, kernel="fused")
    _register_all(engine, specs)

    # Path 1: fused multi-spec batch.
    assert engine.check_batch_all(histories) == expected, tag
    # Path 2: per-spec batch.
    for name in specs:
        assert engine.check_batch(name, histories) == expected[name], (tag, name)
    # Path 3: per-object cursors over the compiled table.
    for name in specs:
        spec = engine.compiled(name)
        cursor_verdicts = [
            HistoryCursor(spec).advance_many(history).accepted for history in histories
        ]
        assert cursor_verdicts == expected[name], (tag, name)

    # Path 4: streaming with a snapshot/restore mid-stream.
    events = generators.event_stream(histories, case_seed + 1)
    half = len(events) // 2
    stream = engine.open_stream(record=True)
    stream.feed_events(events[:half])
    blob = stream.snapshot()
    restored = engine.restore_stream(blob)
    assert restored.reset_on_restore == (), tag
    assert restored.events_seen == half, tag
    restored.feed_events(events[half:])
    for name in specs:
        verdicts = restored.verdicts(name)
        streamed = [verdicts[index] for index in range(len(histories))]
        assert streamed == expected[name], (tag, name, "snapshot mid-stream")

    # Path 5: restore the same blob into a fresh engine -- the process-
    # restart simulation (fingerprints must match across engines because
    # table compilation is deterministic).
    if fresh_restore:
        other = HistoryCheckerEngine(kernel="fused")
        _register_all(other, specs)
        migrated = other.restore_stream(blob)
        assert migrated.reset_on_restore == (), tag
        migrated.feed_events(events[half:])
        for name in specs:
            verdicts = migrated.verdicts(name)
            streamed = [verdicts[index] for index in range(len(histories))]
            assert streamed == expected[name], (tag, name, "fresh-engine restore")
        # Recorded traces survive the restore and replay to the same verdict.
        for index, history in enumerate(histories):
            assert migrated.history(index) == tuple(history), (tag, index)

    # Path 6: the numpy vector kernel, batch and streaming, including the
    # kind-portable snapshot wire format in both directions.
    if HAVE_NUMPY:
        vec = HistoryCheckerEngine(kernel="vector")
        _register_all(vec, specs)
        assert vec.check_batch_all(histories) == expected, (tag, "vector batch")

        vec_stream = vec.open_stream()
        vec_stream.feed_events(events[:half])
        vec_blob = vec_stream.snapshot()
        for target, label in ((vec, "vector→vector"), (engine, "vector→fused")):
            restored_vec = target.restore_stream(vec_blob)
            assert restored_vec.reset_on_restore == (), (tag, label)
            restored_vec.feed_events(events[half:])
            for name in specs:
                verdicts = restored_vec.verdicts(name)
                streamed = [verdicts[index] for index in range(len(histories))]
                assert streamed == expected[name], (tag, name, label)
        # The fused snapshot restores under the vector kernel too.
        from_fused = vec.restore_stream(blob)
        assert from_fused.reset_on_restore == (), (tag, "fused→vector")
        from_fused.feed_events(events[half:])
        for name in specs:
            verdicts = from_fused.verdicts(name)
            streamed = [verdicts[index] for index in range(len(histories))]
            assert streamed == expected[name], (tag, name, "fused→vector")

        # Mid-stream re-registration: bumping one spec's generation forces a
        # kernel rebuild, so the live ndarray columns of every *other* spec
        # are carried over through state translation.
        if len(specs) > 1:
            names = sorted(specs)
            vec.add_spec(names[0], specs[names[0]])
            vec_stream.feed_events(events[half:])
            for name in names[1:]:
                verdicts = vec_stream.verdicts(name)
                streamed = [verdicts[index] for index in range(len(histories))]
                assert streamed == expected[name], (tag, name, "vector re-registration")

    # Path 7: the enforce=True admissibility gate against an independent
    # DFA-walk oracle, under both kernel kinds.
    oracle_fatal = _enforcement_oracle(specs, events)
    for kind in ("fused", "vector") if HAVE_NUMPY else ("fused",):
        _check_enforcement(kind, specs, events, oracle_fatal, tag)


def test_differential_fuzz_all_paths_agree(fuzz_rounds):
    """>= 200 seeded cases per run: kernel = batch = cursors = DFA = stream."""
    cases = BASE_CASES * fuzz_rounds
    for case in range(cases):
        _check_one_case(BASE_SEED + case, fresh_restore=case % 4 == 0)


def test_pool_and_serial_verdicts_agree(fuzz_rounds):
    """The process-pool sharding path returns the serial path's verdicts.

    A tiny batch size (with the events-per-shard floor disabled) forces real
    sharding (more shards than workers), re-registering a spec between
    rounds exercises the worker-side kernel cache's ``(name, generation)``
    invalidation, and alternating kernel kinds sends both the zlib-packed
    and the raw buffer-protocol shard payloads across the pickle boundary.
    """
    kinds = ["fused", "auto"] if HAVE_NUMPY else ["fused"]
    with ProcessPoolBackend(max_workers=2) as pool:
        for round_index in range(2 * fuzz_rounds):
            seed = BASE_SEED + 10_000 + round_index
            specs, histories = _random_case(seed)
            expected = _oracle(specs, histories)
            engine = HistoryCheckerEngine(
                executor=pool,
                batch_size=3,
                min_shard_events=1,
                kernel=kinds[round_index % len(kinds)],
            )
            _register_all(engine, specs)
            assert engine.check_batch_all(histories) == expected, seed
            # Re-register the first spec with the last spec's automaton: the
            # worker cache must not serve the stale kernel.
            names = sorted(specs)
            first, last = names[0], names[-1]
            engine.add_spec(first, specs[last])
            reregistered = engine.check_batch(first, histories)
            assert reregistered == expected[last], seed


def test_fuzz_case_generator_is_deterministic():
    """The case generator itself is a function of the seed alone."""
    specs_a, histories_a = _random_case(BASE_SEED)
    specs_b, histories_b = _random_case(BASE_SEED)
    assert histories_a == histories_b
    assert sorted(specs_a) == sorted(specs_b)
    for name in specs_a:
        outcome_a = _oracle({name: specs_a[name]}, histories_a)
        outcome_b = _oracle({name: specs_b[name]}, histories_b)
        assert outcome_a == outcome_b


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
