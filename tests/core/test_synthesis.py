"""Tests for the synthesis of SL schemas from regular inventories (Lemma 3.4 / Theorem 3.2(2))."""

import pytest

from repro.core.rolesets import RoleSet
from repro.core.sl_analysis import SLMigrationAnalysis
from repro.core.synthesis import synthesize_sl_schema
from repro.formal import regex as rx
from repro.model.errors import AnalysisError
from repro.model.schema import DatabaseSchema
from repro.workloads import three_class


@pytest.fixture(scope="module")
def schema():
    return three_class.synthesis_schema()


ROLE_P = RoleSet({"R", "P"})
ROLE_Q = RoleSet({"R", "Q"})


class TestConstruction:
    def test_single_driver_transaction(self, schema):
        result = synthesize_sl_schema(schema, rx.Concat(rx.Symbol(ROLE_P), rx.Symbol(ROLE_Q)))
        assert len(result.transactions) == 1
        assert len(result.lazy_transactions) == 1
        driver = result.transactions.transactions[0]
        assert driver.updates[0].operator == "create"
        # Two parameters: the edge choice and the end-of-round rewrite.
        assert len(driver.variables()) == 2

    def test_control_attribute_selection(self, schema):
        result = synthesize_sl_schema(schema, rx.Symbol(ROLE_P), control_attributes=("A", "B", "C"))
        assert result.control_attributes == ("A", "B", "C")
        with pytest.raises(AnalysisError):
            synthesize_sl_schema(schema, rx.Symbol(ROLE_P), control_attributes=("A", "B"))
        with pytest.raises(AnalysisError):
            synthesize_sl_schema(schema, rx.Symbol(ROLE_P), control_attributes=("A", "B", "Nope"))

    def test_requires_three_root_attributes(self):
        small = DatabaseSchema({"R", "P"}, {("P", "R")}, {"R": {"A", "B"}, "P": set()})
        with pytest.raises(AnalysisError):
            synthesize_sl_schema(small, rx.Symbol(RoleSet({"R", "P"})))

    def test_rejects_foreign_or_empty_role_sets(self, schema):
        with pytest.raises(AnalysisError):
            synthesize_sl_schema(schema, rx.Symbol(RoleSet({"R", "Z"})))
        with pytest.raises(AnalysisError):
            synthesize_sl_schema(schema, rx.EmptySet())

    def test_requires_weakly_connected_schema(self):
        split = DatabaseSchema({"R", "S"}, set(), {"R": {"A", "B", "C"}, "S": set()})
        with pytest.raises(AnalysisError):
            synthesize_sl_schema(split, rx.Symbol(RoleSet({"R"})))


class TestRoundTrip:
    """Experiment E10: analyse the synthesized schema and compare with the target families."""

    @pytest.fixture(scope="class")
    def round_trip(self, schema):
        expression = rx.Concat(rx.Symbol(ROLE_P), rx.Star(rx.Symbol(ROLE_Q)))  # P Q*
        result = synthesize_sl_schema(schema, expression)
        analysis = SLMigrationAnalysis(result.transactions)
        expected = result.expected_families(expression)
        return result, analysis, expected

    @pytest.mark.parametrize("kind", ["all", "immediate_start", "proper"])
    def test_families_match_theorem_3_2(self, round_trip, kind):
        _result, analysis, expected = round_trip
        assert analysis.pattern_family(kind).equals(expected[kind]), kind

    def test_lazy_schema_matches_f_rr(self, schema):
        expression = rx.Concat(rx.Symbol(ROLE_P), rx.Star(rx.Symbol(ROLE_Q)))
        result = synthesize_sl_schema(schema, expression)
        analysis = SLMigrationAnalysis(result.lazy_transactions)
        expected = result.expected_families(expression)
        assert analysis.pattern_family("lazy").equals(expected["lazy"])
