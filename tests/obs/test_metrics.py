"""The metrics registry: sharded counters, histograms, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counter_deltas,
)


class TestCounters:
    def test_counts_and_reads(self):
        registry = MetricsRegistry("t")
        counter = registry.counter("events_total", "Events")
        assert counter.value() == 0
        counter.inc()
        counter.inc(41)
        assert counter.value() == 42

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry("t")
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry("t")
        passed = registry.counter("verdicts_total", verdict="pass")
        failed = registry.counter("verdicts_total", verdict="fail")
        assert passed is not failed
        passed.inc(3)
        failed.inc(1)
        assert passed.value() == 3
        assert failed.value() == 1
        # Label order does not mint a new identity.
        assert registry.counter("multi", a="1", b="2") is registry.counter("multi", b="2", a="1")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry("t")
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")
        with pytest.raises(TypeError):
            registry.histogram("thing")

    def test_merge_under_threads_is_exact(self):
        """The lock-free write path must never lose an increment."""
        registry = MetricsRegistry("t")
        counter = registry.counter("hammered_total")
        threads, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value() == threads * per_thread

    def test_finished_thread_contributions_are_kept(self):
        counter = Counter("kept_total", "", ())
        worker = threading.Thread(target=lambda: counter.inc(7))
        worker.start()
        worker.join()
        counter.inc(1)
        assert counter.value() == 8


class TestGauges:
    def test_set_inc_dec(self):
        gauge = Gauge("depth", "", ())
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_callback_backed(self):
        registry = MetricsRegistry("t")
        items = [1, 2, 3]
        gauge = registry.gauge("size", callback=lambda: len(items))
        assert gauge.value() == 3
        items.append(4)
        assert gauge.value() == 4


class TestHistograms:
    def test_boundary_values_land_in_the_le_bucket(self):
        """Prometheus ``le`` semantics: a bound belongs to its own bucket."""
        histogram = Histogram("h", "", (), buckets=(1.0, 2.0))
        histogram.observe(1.0)  # exactly on the first bound
        histogram.observe(2.0)  # exactly on the second
        histogram.observe(0.5)
        histogram.observe(9.0)  # overflow
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(12.5)
        # Cumulative: le=1.0 covers {0.5, 1.0}; le=2.0 adds {2.0}; +Inf all.
        assert snap["buckets"] == {"1.0": 2, "2.0": 3, "+Inf": 4}

    def test_buckets_are_sorted_and_required(self):
        histogram = Histogram("h", "", (), buckets=(5.0, 1.0))
        assert histogram.bounds == (1.0, 5.0)
        with pytest.raises(ValueError):
            Histogram("h", "", (), buckets=())

    def test_thread_merge_is_exact(self):
        histogram = Histogram("h", "", (), buckets=(10.0,))
        threads, per_thread = 4, 2000

        def hammer():
            for i in range(per_thread):
                histogram.observe(i % 20)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        snap = histogram.snapshot()
        assert snap["count"] == threads * per_thread
        assert snap["buckets"]["+Inf"] == threads * per_thread


class TestExposition:
    def test_to_dict_renders_labels_and_expands_histograms(self):
        registry = MetricsRegistry("t")
        registry.counter("a_total", verdict="pass").inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        data = registry.to_dict()
        assert data['a_total{verdict="pass"}'] == 2
        assert data["lat"]["count"] == 1

    def test_render_text_is_prometheus_shaped(self):
        registry = MetricsRegistry("t")
        registry.counter("a_total", "What a counts", verdict="pass").inc(2)
        registry.counter("a_total", verdict="fail").inc(1)
        registry.gauge("depth").set(3)
        registry.histogram("lat", "Latency", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_text()
        lines = text.splitlines()
        assert "# HELP a_total What a counts" in lines
        assert "# TYPE a_total counter" in lines
        # One HELP/TYPE header per metric name, not per label set.
        assert sum(1 for line in lines if line == "# TYPE a_total counter") == 1
        assert 'a_total{verdict="fail"} 1' in lines
        assert 'a_total{verdict="pass"} 2' in lines
        assert "depth 3" in lines
        assert 'lat_bucket{le="0.1"} 1' in lines
        assert 'lat_bucket{le="+Inf"} 1' in lines
        assert "lat_count 1" in lines
        assert text.endswith("\n")

    def test_help_text_survives_helpless_get(self):
        registry = MetricsRegistry("t")
        registry.counter("a_total", "Documented once")
        registry.counter("a_total")  # later get-or-create without help
        assert "# HELP a_total Documented once" in registry.render_text()


class TestCrossProcessMerge:
    def test_merge_counter_deltas(self):
        registry = MetricsRegistry("t")
        registry.counter("hits_total", cache="worker").inc(1)
        merge_counter_deltas(
            registry,
            [
                ("hits_total", {"cache": "worker"}, 4),
                ("misses_total", {"cache": "worker"}, 2),
                ("noise_total", {}, 0),  # zero deltas do not mint instruments
            ],
        )
        assert registry.counter("hits_total", cache="worker").value() == 5
        assert registry.counter("misses_total", cache="worker").value() == 2
        assert "noise_total" not in registry.to_dict()
