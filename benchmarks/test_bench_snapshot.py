"""E24: checkpoint/restore of a monitor beats re-feeding its stream.

The durability claim of the snapshot layer, pinned by in-test assertions:
a streaming session tracking 10^5 accounts against the six-spec banking
monitoring suite serializes (snapshot) and rebuilds (restore) in **under
10% of the time it takes to re-feed the ~10^6-event stream** that produced
its state -- the snapshot cost scales with the number of *objects*, not
with the number of events replayed into them.  The restored session is
asserted verdict-identical before any timing claim is made.
"""

import time

from repro.engine import HistoryCheckerEngine
from repro.workloads import generators


def test_e24_snapshot_restore_beats_refeeding(benchmark, run_once):
    histories, events, suite = generators.conforming_banking_stream(
        seed=2027, objects=100_000, mean_length=10
    )
    engine = HistoryCheckerEngine()
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    for name in suite:
        engine.compiled(name)  # compile outside every timer

    def feed_all():
        stream = engine.open_stream()
        batch = engine.encode_events(events, objects=stream.object_interner)
        stream.feed_events(batch)
        return stream

    feed_elapsed = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        stream = feed_all()
        feed_elapsed = min(feed_elapsed, time.perf_counter() - start)

    def checkpoint_cycle():
        return engine.restore_stream(stream.snapshot())

    cycle_elapsed = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        restored = checkpoint_cycle()
        cycle_elapsed = min(cycle_elapsed, time.perf_counter() - start)

    def five_checkpoint_cycles():
        # The tracked unit is five full cycles: one cycle sits under the CI
        # gate's 50ms tracking floor, which would silently untrack E24.
        for _ in range(5):
            restored = checkpoint_cycle()
        return restored

    run_once(benchmark, five_checkpoint_cycles)

    blob_bytes = len(stream.snapshot())
    ratio = cycle_elapsed / feed_elapsed
    print(
        f"\n[E24] {len(histories)} objects x {len(suite)} specs "
        f"({len(events)} events): feed {feed_elapsed * 1000:.0f}ms, "
        f"snapshot+restore {cycle_elapsed * 1000:.0f}ms "
        f"({ratio:.1%} of re-feeding), blob {blob_bytes / 1024:.0f}KB"
    )

    assert restored.reset_on_restore == ()
    assert restored.events_seen == stream.events_seen
    for name in suite:
        assert restored.verdicts(name) == stream.verdicts(name), name
    assert ratio < 0.10, (
        f"snapshot+restore took {ratio:.1%} of re-feeding the stream (>= 10%)"
    )
