"""Vector kernel walkthrough: the same monitoring suite, numpy gathers.

The vector kernel (:mod:`repro.engine.vector`) mirrors the fused product
kernel's transition tables as flat narrow-dtype ndarrays and advances a
whole encoded batch with column gathers instead of a per-event Python
loop.  This example

1. registers the six-constraint banking monitoring suite twice -- once
   with ``kernel="fused"`` (the pure-Python product kernel) and once with
   ``kernel="vector"`` (the numpy gather kernel),
2. streams the identical pre-encoded event batch through both and compares
   wall-clock and verdicts (always identical -- the vector kernel inherits
   the fused kernel's state numbering),
3. peeks at the machinery: the per-group table dtypes from the
   uint8/uint16/uint32 ladder and the peel plan cached on the batch, and
4. snapshots the vector session and restores it under the fused kernel --
   the snapshot wire format is kind-portable, so a monitor checkpointed on
   a numpy host restores on a plain-Python one.

Without numpy installed (it ships as the optional ``repro[fast]`` extra)
the example still runs: ``kernel="auto"`` -- the default -- silently uses
the fused kernel, and the vector half of the comparison is skipped.

Run with:  python examples/vector_kernel.py
"""

import time

from repro.engine import HAVE_NUMPY, HistoryCheckerEngine
from repro.workloads import generators


def build_engine(suite, kind: str) -> HistoryCheckerEngine:
    engine = HistoryCheckerEngine(kernel=kind)
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    for name in suite:
        engine.compiled(name)  # compile outside the timers
    return engine


def timed_stream(engine, events):
    """Best-of-three feed of a pre-encoded batch, plus the final stream."""
    batch = engine.encode_events(events)
    best, stream = float("inf"), None
    for _ in range(3):
        stream = engine.open_stream()
        start = time.perf_counter()
        stream.feed_events(batch)
        best = min(best, time.perf_counter() - start)
    return best, stream, batch


def main() -> None:
    histories, events, suite = generators.conforming_banking_stream(
        seed=7, objects=20_000, mean_length=10
    )
    print(f"monitoring suite: {', '.join(suite)}")
    print(f"stream: {len(events)} events over {len(histories)} accounts")
    if not HAVE_NUMPY:
        print("\nnumpy is not installed (pip install 'repro[fast]'):")
        print('kernel="auto" falls back to the pure-Python fused kernel.')
        engine = build_engine(suite, "auto")
        elapsed, stream, _batch = timed_stream(engine, events)
        print(f"fused sweep: {elapsed * 1000:.1f}ms")
        return

    # ----------------------------------------------------------------- #
    # 1. + 2. The same batch through both kernels.
    # ----------------------------------------------------------------- #
    fused = build_engine(suite, "fused")
    vector = build_engine(suite, "vector")
    fused_ms, fused_stream, _ = timed_stream(fused, events)
    vector_ms, vector_stream, batch = timed_stream(vector, events)
    print(
        f"\nfused sweep:  {fused_ms * 1000:6.1f}ms"
        f"\nvector sweep: {vector_ms * 1000:6.1f}ms"
        f"  ({fused_ms / vector_ms:.1f}x, same verdicts)"
    )
    for name in suite:
        assert vector_stream.verdicts(name) == fused_stream.verdicts(name), name

    # ----------------------------------------------------------------- #
    # 3. The machinery: dtype ladder and the cached peel plan.
    # ----------------------------------------------------------------- #
    kernel = vector._kernel_for(tuple(suite))
    for index, group in enumerate(kernel.groups):
        table = kernel._table(index).table
        print(
            f"group {index}: {len(group.names)} spec(s), "
            f"{table.shape[0]} product states x {table.shape[1]} symbols, "
            f"dtype {table.dtype} ({table.nbytes} bytes)"
        )
    chunk_size, _plan, (gathers, scalar_events) = batch._np_plan
    print(
        f"peel plan: {gathers} gather rounds over "
        f"{-(-len(events) // chunk_size)} chunks of {chunk_size} events "
        f"({scalar_events} scalar-fallback events), "
        f"cached on the batch (warm feeds replay it)"
    )

    # ----------------------------------------------------------------- #
    # 4. Kind-portable snapshots: vector session, fused restore.
    # ----------------------------------------------------------------- #
    blob = vector_stream.snapshot()
    restored = fused.restore_stream(blob)
    assert restored.all_verdicts() == vector_stream.all_verdicts()
    print(
        f"\nsnapshot: {len(blob) / 1024:.0f}KB from the vector session, "
        f"restored verdict-identical under the fused kernel"
    )


if __name__ == "__main__":
    main()
