"""Engine integration of MCL specs and the spec re-registration fix.

Covers the regression: re-registering a spec under an existing name must
evict the stale compiled table (batch path) and must never interpret
cursor states minted against the old table with the new one (stream path),
plus the end-to-end acceptance pin that an MCL source string registered via
``add_spec`` streams verdicts identical to the automaton-registered spec.
"""

import pytest

from repro.engine import HistoryCheckerEngine
from repro.workloads import banking, university
from repro.workloads.generators import banking_event_stream, mcl_event_stream

IC, RC = banking.ROLE_INTEREST, banking.ROLE_REGULAR


# --------------------------------------------------------------------------- #
# Re-registration (the satellite fix)
# --------------------------------------------------------------------------- #
def test_reregistration_evicts_stale_compiled_table():
    engine = HistoryCheckerEngine()
    engine.add_spec("spec", banking.checking_role_inventory())
    # Force compilation and verify the first language is live.
    assert engine.check_batch("spec", [(IC,), (RC, IC)]) == [True, True]
    first = engine.compiled("spec")

    engine.add_spec("spec", banking.no_downgrade_inventory())
    second = engine.compiled("spec")
    assert first is not second
    # [RC, IC] is allowed by no_downgrade but [IC, RC] is not: the new
    # automaton must answer, not the stale table.
    assert engine.check_batch("spec", [(RC, IC), (IC, RC)]) == [True, False]
    assert engine.generation("spec") == 2


def test_reregistration_under_same_name_does_not_serve_stale_cache_key():
    engine = HistoryCheckerEngine(cache_size=8)
    engine.add_spec("spec", banking.checking_role_inventory())
    engine.compiled("spec")
    engine.add_spec("spec", banking.no_downgrade_inventory())
    # The old generation's entry was invalidated; only the new one fills in.
    engine.compiled("spec")
    stats = engine.cache_stats()
    assert stats["size"] == 1


def test_open_stream_resets_cursors_after_reregistration():
    histories, events = banking_event_stream(seed=11, objects=300, mean_length=6)
    cut = len(events) // 2

    engine = HistoryCheckerEngine()
    engine.add_spec("spec", banking.checking_role_inventory())
    stream = engine.open_stream(["spec"])
    stream.feed_events(events[:cut])

    engine.add_spec("spec", banking.no_downgrade_inventory())
    stream.feed_events(events[cut:])

    # The stream restarted the spec's histories at the re-registration
    # point: verdicts equal a fresh session fed only the later events.
    fresh = engine.open_stream(["spec"])
    fresh.feed_events(events[cut:])
    assert stream.verdicts("spec") == fresh.verdicts("spec")
    # Total event accounting is unaffected by the reset.
    assert stream.events_seen == len(events)


def test_reregistration_resets_only_the_touched_spec():
    engine = HistoryCheckerEngine()
    engine.add_spec("keep", banking.checking_role_inventory())
    engine.add_spec("swap", banking.checking_role_inventory())
    stream = engine.open_stream(["keep", "swap"])
    stream.feed_events([(1, IC), (2, RC)])
    before = stream.verdicts("keep")

    engine.add_spec("swap", banking.no_downgrade_inventory())
    stream.feed_events([(3, IC)])
    # The untouched spec kept its cursors.
    after = stream.verdicts("keep")
    assert {k: v for k, v in after.items() if k in before} == before
    assert set(stream.objects("swap")) == {3}


# --------------------------------------------------------------------------- #
# MCL source registration
# --------------------------------------------------------------------------- #
def test_add_spec_accepts_mcl_text_and_matches_automaton_spec_end_to_end():
    histories, events = banking_event_stream(seed=23, objects=400, mean_length=8)

    text_engine = HistoryCheckerEngine()
    text_engine.add_spec("checking_roles", banking.MCL_SOURCE, schema=banking.schema())
    automaton_engine = HistoryCheckerEngine()
    automaton_engine.add_spec("checking_roles", banking.checking_role_inventory())

    text_stream = text_engine.open_stream()
    automaton_stream = automaton_engine.open_stream()
    text_stream.feed_events(events)
    automaton_stream.feed_events(events)
    assert text_stream.verdicts("checking_roles") == automaton_stream.verdicts("checking_roles")

    assert text_engine.check_batch("checking_roles", histories) == automaton_engine.check_batch(
        "checking_roles", histories
    )


def test_add_spec_accepts_compiled_constraint_object():
    from repro.core.rolesets import EMPTY_ROLE_SET

    compiled = banking.mcl_constraints()["checking_roles"]
    engine = HistoryCheckerEngine()
    engine.add_spec("spec", compiled)
    assert engine.check_batch("spec", [(IC,), (EMPTY_ROLE_SET,)]) == [True, True]


def test_add_spec_mcl_text_requires_schema():
    engine = HistoryCheckerEngine()
    with pytest.raises(TypeError, match="schema"):
        engine.add_spec("spec", "constraint spec = empty*")


def test_add_spec_mcl_text_selects_by_name_or_rejects_ambiguity():
    from repro.spec import MCLError

    engine = HistoryCheckerEngine()
    engine.add_spec("no_downgrade", banking.MCL_SOURCE, schema=banking.schema())
    assert engine.check_batch("no_downgrade", [(RC, IC), (IC, RC)]) == [True, False]
    with pytest.raises(MCLError, match="ambiguous"):
        engine.add_spec("unrelated_name", banking.MCL_SOURCE, schema=banking.schema())


def test_mcl_event_stream_generator_matches_batch_verdicts():
    text = "constraint guide = init (empty* ([STUDENT]+ [GRAD_ASSIST]*)* empty*)"
    histories, events = mcl_event_stream(text, university.schema(), seed=3, objects=200)
    engine = HistoryCheckerEngine()
    engine.add_spec("guide", text, schema=university.schema())
    stream = engine.open_stream(["guide"])
    stream.feed_events(events)
    batch = engine.check_batch("guide", histories)
    verdicts = stream.verdicts("guide")
    assert [verdicts[index] for index in range(len(histories))] == batch
