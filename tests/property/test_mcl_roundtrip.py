"""Property tests pinning the MCL pipeline to the automaton stack.

* ``Regex -> MCL text -> parse -> compile`` preserves the language
  (checked with :func:`repro.formal.decision.are_equivalent` on random
  regexes over two schemas);
* unparse/parse round trips are stable at the syntax level;
* every bundled workload's MCL spec compiles to an automaton
  language-equivalent to the hand-built oracle inventory (the acceptance
  pin for the spec layer).
"""

import pytest

from repro.core.rolesets import enumerate_role_sets
from repro.formal import decision
from repro.spec import compile_mcl, mcl_of_regex, parse_mcl, unparse
from repro.workloads import banking, immigration, phd, three_class, university
from repro.workloads.generators import random_role_set_regex

SCHEMAS = {
    "university": university.schema(),
    "three_class": three_class.schema(),
}

WORKLOADS = (banking, university, phd, three_class, immigration)


@pytest.mark.parametrize("schema_name", sorted(SCHEMAS))
@pytest.mark.parametrize("seed", range(12))
def test_regex_to_mcl_round_trip_preserves_language(schema_name, seed):
    schema = SCHEMAS[schema_name]
    expression = random_role_set_regex(schema, seed, size=6)
    text = "constraint round_trip = " + mcl_of_regex(expression)
    compiled = compile_mcl(text, schema)["round_trip"]
    reference = expression.to_nfa(enumerate_role_sets(schema))
    assert decision.are_equivalent(compiled.automaton, reference), text


@pytest.mark.parametrize("seed", range(8))
def test_mcl_unparse_parse_is_stable(seed):
    schema = SCHEMAS["university"]
    expression = random_role_set_regex(schema, seed, size=8)
    text = "constraint c = " + mcl_of_regex(expression)
    module = parse_mcl(text)
    printed = unparse(module)
    assert unparse(parse_mcl(printed)) == printed


@pytest.mark.parametrize("module", WORKLOADS, ids=lambda m: m.__name__.rsplit(".", 1)[-1])
def test_workload_mcl_specs_match_hand_built_oracles(module):
    compiled = module.mcl_constraints()
    assert set(compiled) == set(module.MCL_ORACLES)
    for name, factory in module.MCL_ORACLES.items():
        oracle = factory()
        assert decision.are_equivalent(compiled[name].automaton, oracle.automaton), (
            f"{module.__name__}:{name} diverges from its hand-built oracle"
        )


@pytest.mark.parametrize("module", WORKLOADS, ids=lambda m: m.__name__.rsplit(".", 1)[-1])
def test_workload_mcl_compilation_is_deterministic(module):
    first = module.mcl_constraints()
    second = module.mcl_constraints()
    for name in first:
        assert first[name].automaton.transitions == second[name].automaton.transitions
