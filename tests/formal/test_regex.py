"""Unit tests for regular-expression ASTs and the parser."""

import pytest

from repro.formal.regex import (
    Concat,
    EmptySet,
    Epsilon,
    Optional,
    Plus,
    RegexSyntaxError,
    Star,
    Symbol,
    Union,
    concat_of,
    literal_word,
    parse_regex,
    union_of,
)

SYMBOLS = {"a": "a", "b": "b", "ab": "AB"}


class TestAst:
    def test_equality_is_structural(self):
        assert Concat(Symbol("a"), Symbol("b")) == Concat(Symbol("a"), Symbol("b"))
        assert Union(Symbol("a"), Symbol("b")) != Union(Symbol("b"), Symbol("a"))
        assert hash(Star(Symbol("a"))) == hash(Star(Symbol("a")))

    def test_symbols_and_size(self):
        expression = Union(Concat(Symbol("a"), Star(Symbol("b"))), Epsilon())
        assert expression.symbols() == {"a", "b"}
        assert expression.size() == 6

    def test_matches_empty(self):
        assert Star(Symbol("a")).matches_empty()
        assert Optional(Symbol("a")).matches_empty()
        assert not Plus(Symbol("a")).matches_empty()
        assert not Concat(Symbol("a"), Epsilon()).matches_empty()
        assert Union(Epsilon(), Symbol("a")).matches_empty()
        assert not EmptySet().matches_empty()

    def test_simplify(self):
        assert Concat(EmptySet(), Symbol("a")).simplify() == EmptySet()
        assert Concat(Epsilon(), Symbol("a")).simplify() == Symbol("a")
        assert Union(EmptySet(), Symbol("a")).simplify() == Symbol("a")
        assert Union(Symbol("a"), Symbol("a")).simplify() == Symbol("a")
        assert Star(EmptySet()).simplify() == Epsilon()
        assert Star(Star(Symbol("a"))).simplify() == Star(Symbol("a"))
        assert Plus(Epsilon()).simplify() == Epsilon()
        assert Optional(EmptySet()).simplify() == Epsilon()

    def test_immutability(self):
        node = Symbol("a")
        with pytest.raises(AttributeError):
            node.value = "b"

    def test_helpers(self):
        assert literal_word([]) == Epsilon()
        assert literal_word(["a", "b"]) == Concat(Symbol("a"), Symbol("b"))
        assert union_of([]) == EmptySet()
        assert concat_of([]) == Epsilon()
        assert union_of([Symbol("a")]) == Symbol("a")


class TestToNfa:
    @pytest.mark.parametrize(
        "expression, accepted, rejected",
        [
            (Symbol("a"), [("a",)], [(), ("b",), ("a", "a")]),
            (Concat(Symbol("a"), Symbol("b")), [("a", "b")], [("a",), ("b", "a")]),
            (Union(Symbol("a"), Symbol("b")), [("a",), ("b",)], [("a", "b")]),
            (Star(Symbol("a")), [(), ("a", "a", "a")], [("b",)]),
            (Plus(Symbol("a")), [("a",), ("a", "a")], [()]),
            (Optional(Symbol("a")), [(), ("a",)], [("a", "a")]),
            (EmptySet(), [], [(), ("a",)]),
            (Epsilon(), [()], [("a",)]),
        ],
    )
    def test_language(self, expression, accepted, rejected):
        nfa = expression.to_nfa({"a", "b"})
        for word in accepted:
            assert nfa.accepts(word), word
        for word in rejected:
            assert not nfa.accepts(word), word


class TestParser:
    def test_basic_expression(self):
        expression = parse_regex("a(b|a)*", SYMBOLS)
        nfa = expression.to_nfa()
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "b", "a", "b"))
        assert not nfa.accepts(("b",))

    def test_plus_and_optional(self):
        nfa = parse_regex("a+ b?", SYMBOLS).to_nfa()
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "a", "b"))
        assert not nfa.accepts(("b",))

    def test_juxtaposition_decomposition(self):
        # "ab" is a registered multi-character name; "ba" is decomposed.
        assert parse_regex("ab", SYMBOLS) == Symbol("AB")
        assert parse_regex("ba", SYMBOLS) == Concat(Symbol("b"), Symbol("a"))

    def test_bracketed_names(self):
        mapping = {"[SE]": "se", "0": "empty"}
        expression = parse_regex("0* [SE]+", mapping)
        nfa = expression.to_nfa()
        assert nfa.accepts(("empty", "se"))
        assert nfa.accepts(("se", "se"))
        assert not nfa.accepts(("empty",))

    def test_explicit_concatenation_dot(self):
        assert parse_regex("a.b", SYMBOLS) == parse_regex("a b", SYMBOLS)

    def test_empty_input_is_epsilon(self):
        assert parse_regex("", SYMBOLS) == Epsilon()

    @pytest.mark.parametrize("text", ["a|*", "(a", "a)", "[unterminated", "unknownname*"])
    def test_syntax_errors(self, text):
        with pytest.raises(RegexSyntaxError):
            parse_regex(text, SYMBOLS)
