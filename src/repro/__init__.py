"""repro: dynamic constraints and object migration for object-based databases.

A production-quality reproduction of Jianwen Su, *Dynamic Constraints and
Object Migration* (VLDB 1991; full version TCS 184, 1997).  The package
provides

* an object-based data model with class hierarchies and attribute values
  (:mod:`repro.model`),
* the update languages SL, CSL+ and CSL with executable semantics
  (:mod:`repro.language`),
* role sets, migration patterns and migration inventories as dynamic
  integrity constraints, together with the analysis and synthesis
  algorithms of the paper -- regularity of SL pattern families, synthesis of
  SL schemas from regular inventories, decidable satisfaction/generation,
  CSL+ constructions for r.e. and context-free inventories, and the
  reachability analysis for inflow/script schemas (:mod:`repro.core`),
* the paper's worked examples as ready-made workloads plus random
  generators and event streams for scaling studies (:mod:`repro.workloads`),
* a streaming history-checker engine for checking millions of object
  histories against compiled specifications (:mod:`repro.engine`),
* MCL, a declarative migration-constraint language compiled onto the
  interned automaton stack -- constraints as text instead of hand-built
  automata (:mod:`repro.spec`).

Quickstart::

    from repro import SLMigrationAnalysis, check_constraint
    from repro.workloads import university

    analysis = SLMigrationAnalysis(university.transactions())
    family = analysis.pattern_family("proper")
    verdict = check_constraint(analysis, university.life_cycle_inventory())
    print(verdict.summary())
"""

from repro.model import (
    Assignment,
    AtomicCondition,
    Condition,
    DatabaseInstance,
    DatabaseSchema,
    ObjectId,
    ReproError,
    Variable,
)
from repro.language import (
    ConditionalTransaction,
    ConditionalTransactionSchema,
    ConditionalUpdate,
    Create,
    Delete,
    Generalize,
    Literal,
    Modify,
    Specialize,
    Transaction,
    TransactionSchema,
    apply_transaction,
    apply_update,
    migrate_to_role_set,
    migration_sequence,
    run_sequence,
)
from repro.core import (
    Assertion,
    EMPTY_ROLE_SET,
    InflowSchema,
    MigrationInventory,
    MigrationPattern,
    ReachabilityAnalyzer,
    RoleSet,
    ScriptSchema,
    SLMigrationAnalysis,
    SynthesisResult,
    build_migration_graph,
    cfg_to_csl,
    characterizes,
    check_all_kinds,
    check_constraint,
    enumerate_role_sets,
    explore_patterns,
    generates,
    pattern_of_run,
    reachability_reduction,
    satisfies,
    synthesize_sl_schema,
    turing_to_csl,
)
from repro.engine import HistoryCheckerEngine
from repro.spec import (
    CompiledConstraint,
    MCLError,
    compile_constraint,
    compile_mcl,
    mcl_of_regex,
    parse_mcl,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "ReproError",
    "DatabaseSchema",
    "DatabaseInstance",
    "Condition",
    "AtomicCondition",
    "Variable",
    "Assignment",
    "ObjectId",
    # languages
    "Create",
    "Delete",
    "Modify",
    "Generalize",
    "Specialize",
    "Transaction",
    "TransactionSchema",
    "Literal",
    "ConditionalUpdate",
    "ConditionalTransaction",
    "ConditionalTransactionSchema",
    "apply_update",
    "apply_transaction",
    "run_sequence",
    "migration_sequence",
    "migrate_to_role_set",
    # core
    "RoleSet",
    "EMPTY_ROLE_SET",
    "enumerate_role_sets",
    "MigrationPattern",
    "pattern_of_run",
    "MigrationInventory",
    "SLMigrationAnalysis",
    "build_migration_graph",
    "SynthesisResult",
    "synthesize_sl_schema",
    "check_constraint",
    "check_all_kinds",
    "satisfies",
    "generates",
    "characterizes",
    "explore_patterns",
    "turing_to_csl",
    "cfg_to_csl",
    "reachability_reduction",
    "Assertion",
    "InflowSchema",
    "ScriptSchema",
    "ReachabilityAnalyzer",
    # engine
    "HistoryCheckerEngine",
    # spec (MCL)
    "CompiledConstraint",
    "MCLError",
    "parse_mcl",
    "compile_mcl",
    "compile_constraint",
    "mcl_of_regex",
]
