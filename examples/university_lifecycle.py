"""Example 3.4: the university schema, its transactions and their pattern families.

Reproduces the Figure 1 / Figure 2 schema and instance, the four
transactions of Example 3.4, and compares the analysed pattern families with
the expressions printed in the paper.  Also checks the Example 3.2
life-cycle inventory ("every person is a student, perhaps an assistant, and
eventually an employee"), which these transactions do *not* generate -- the
checker reports the missing patterns.

Run with:  python examples/university_lifecycle.py
"""

from repro import SLMigrationAnalysis, check_all_kinds
from repro.workloads import university


def main() -> None:
    print("=== Figure 2 instance ===")
    print(university.sample_instance().describe())
    print()

    transactions = university.transactions()
    print("=== Example 3.4 transactions ===")
    print(transactions.describe())
    print()

    analysis = SLMigrationAnalysis(transactions)
    print("=== Pattern families (Theorem 3.2) ===")
    expected = university.expected_families()
    for kind, family in analysis.pattern_families().items():
        agrees = family.equals(expected[kind])
        sample = ", ".join(repr(p) for p in family.sample(max_length=4, limit=5))
        print(f"{kind:>16}: matches the paper's expression? {agrees}   sample: {sample}")
    print()

    print("=== Example 3.2 life-cycle inventory ===")
    for kind, verdict in check_all_kinds(analysis, university.life_cycle_inventory()).items():
        print(verdict.summary())


if __name__ == "__main__":
    main()
