"""Sanity tests for the bundled workloads (the paper's figures and examples)."""


from repro.core.rolesets import EMPTY_ROLE_SET
from repro.workloads import banking, generators, immigration, path_expressions, phd, three_class, university


class TestUniversity:
    def test_schema_and_instance(self):
        schema = university.schema()
        assert schema.is_weakly_connected_schema()
        instance = university.sample_instance()
        assert len(instance.all_objects()) == 5

    def test_transactions_validate(self):
        assert len(university.transactions()) == 4

    def test_symbols_cover_all_role_sets(self):
        assert set(university.SYMBOLS.values()) == set(university.ROLE_SETS)

    def test_expected_families_are_well_formed(self):
        for family in university.expected_families().values():
            assert family.is_prefix_closed()

    def test_life_cycle_inventory_contains_the_motivating_pattern(self):
        inventory = university.life_cycle_inventory()
        assert inventory.contains(
            [university.ROLE_P, university.ROLE_S, university.ROLE_G, university.ROLE_E]
        )


class TestPhd:
    def test_both_variants_validate(self):
        assert len(phd.transactions()) == 4
        assert len(phd.transactions(include_graduation=False)) == 3
        assert len(phd.guarded_transactions()) == 4

    def test_inventories(self):
        assert phd.expected_proper_family().contains([phd.ROLE_U, phd.ROLE_S, phd.ROLE_C])
        assert phd.sequential_order_inventory().contains([phd.ROLE_U, phd.ROLE_S])
        assert not phd.sequential_order_inventory().contains([phd.ROLE_S, phd.ROLE_U])


class TestThreeClass:
    def test_schemas(self):
        assert three_class.schema().attributes_of("R") == {"A", "B"}
        assert three_class.synthesis_schema().attributes_of("R") == {"A", "B", "C"}

    def test_transactions_validate(self):
        assert len(three_class.cycle_transactions()) == 1
        assert len(three_class.branch_transactions()) == 1

    def test_inventories(self):
        assert three_class.cycle_inventory().contains(
            [three_class.ROLE_P, three_class.ROLE_Q, three_class.ROLE_Q, three_class.ROLE_P]
        )
        assert three_class.branch_inventory().contains([three_class.ROLE_Q, three_class.ROLE_P])
        assert not three_class.cycle_inventory().contains([three_class.ROLE_Q])


class TestPathExpressions:
    def test_schema_per_operation(self):
        schema = path_expressions.schema(("p", "q"))
        assert schema.classes == {"RESOURCE", "p", "q"}

    def test_inventory(self):
        inventory = path_expressions.path_expression_inventory("(p(q|r)s)*")
        roles = path_expressions.role_sets()
        assert inventory.contains([roles["p"], roles["q"], roles["s"]])
        assert inventory.contains([EMPTY_ROLE_SET, roles["p"], roles["r"]])
        assert not inventory.contains([roles["q"]])

    def test_enforcing_transactions_build(self):
        result = path_expressions.enforcing_transactions("p (q|r)")
        assert len(result.transactions) == 1


class TestBankingAndImmigration:
    def test_banking_transactions(self):
        assert len(banking.transactions()) == 5
        assert banking.checking_role_inventory().contains([banking.ROLE_INTEREST, banking.ROLE_REGULAR])
        assert not banking.no_downgrade_inventory().contains(
            [banking.ROLE_INTEREST, banking.ROLE_REGULAR]
        )

    def test_immigration_schemas(self):
        assert len(immigration.transactions()) == 5
        lawful = immigration.inflow_schema()
        assert ("record_return", "grant_immigrant_status") in lawful.precedence
        assert ("close_file", "grant_immigrant_status") not in lawful.precedence


class TestGenerators:
    def test_random_schema_is_valid_and_deterministic(self):
        schema_a = generators.random_schema(seed=7, classes=6)
        schema_b = generators.random_schema(seed=7, classes=6)
        assert schema_a == schema_b
        assert schema_a.is_weakly_connected_schema()
        assert len(schema_a.classes) == 6

    def test_random_transactions_validate(self):
        schema = generators.random_schema(seed=3, classes=5)
        transactions = generators.random_transactions(schema, seed=3, transactions=3)
        assert len(transactions) == 3  # validation happens in the constructor

    def test_random_regex_uses_schema_role_sets(self):
        schema = generators.random_schema(seed=5, classes=4)
        expression = generators.random_role_set_regex(schema, seed=5, size=5)
        role_sets = set(symbol for symbol in expression.symbols())
        from repro.core.rolesets import enumerate_role_sets

        assert role_sets <= set(enumerate_role_sets(schema))

    def test_random_words(self):
        words = generators.random_words(["a", "b"], seed=1, count=10, max_length=4)
        assert len(words) == 10
        assert all(len(word) <= 4 for word in words)
