"""Unit tests for the Turing machine simulator."""

import pytest

from repro.formal.turing import STAY, TMConfiguration, TMTransition, TuringMachine


class TestTransitionsAndConfigurations:
    def test_transition_validates_move(self):
        with pytest.raises(ValueError):
            TMTransition("q", "a", "q", "a", "X")

    def test_configuration_reading_and_pretty(self):
        configuration = TMConfiguration("q", ("a", "b"), 1)
        assert configuration.reading("_") == "b"
        assert TMConfiguration("q", (), 0).reading("_") == "_"
        assert "[b]" in configuration.pretty("_")

    def test_machine_validation(self):
        blank = "_"
        with pytest.raises(ValueError):
            TuringMachine({"q"}, {"_"}, {"_"}, blank, [], "q", "q")  # blank in input alphabet
        with pytest.raises(ValueError):
            TuringMachine({"q"}, {"a"}, {"a", blank}, blank, [], "missing", "q")
        with pytest.raises(ValueError):
            TuringMachine(
                {"q"},
                {"a"},
                {"a", blank},
                blank,
                [TMTransition("q", "z", "q", "a", STAY)],
                "q",
                "q",
            )


class TestBundledMachines:
    def test_a_plus_machine(self):
        machine = TuringMachine.accepting_regular_sample(["a", "b"])
        assert machine.is_deterministic()
        assert machine.accepts(("a",))
        assert machine.accepts(("a", "a", "a"))
        assert not machine.accepts(())
        assert not machine.accepts(("b",))
        assert not machine.accepts(("a", "b"))

    def test_equal_pairs_machine(self):
        machine = TuringMachine.accepting_equal_pairs("a", "b")
        assert machine.accepts(("a", "b"))
        assert machine.accepts(("a", "a", "b", "b"))
        assert machine.accepts(("a", "a", "a", "b", "b", "b"))
        assert not machine.accepts(("a", "b", "b"))
        assert not machine.accepts(("b", "a"))
        assert not machine.accepts(("a",))

    def test_never_halting_machine_times_out(self):
        machine = TuringMachine.never_halting("a")
        verdict, _, steps = machine.run(("a",), max_steps=50)
        assert verdict == "timeout"
        assert steps == 50

    def test_accepted_words_enumeration(self):
        machine = TuringMachine.accepting_equal_pairs("a", "b")
        words = list(machine.accepted_words(max_length=4))
        assert ("a", "b") in words
        assert ("a", "a", "b", "b") in words
        assert all(word.count("a") == word.count("b") for word in words)

    def test_rejection_by_stuck_state(self):
        machine = TuringMachine.accepting_regular_sample(["a"])
        verdict, _, _ = machine.run(("a", "a"), max_steps=100)
        assert verdict == "accept"
        verdict, _, _ = machine.run((), max_steps=100)
        assert verdict == "reject"

    def test_input_validation(self):
        machine = TuringMachine.accepting_regular_sample(["a"])
        with pytest.raises(ValueError):
            machine.initial_configuration(("z",))
