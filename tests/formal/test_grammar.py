"""Unit tests for grammars: left-linear, context-free, CNF/CYK, Greibach."""

import pytest

from repro.formal.grammar import ContextFreeGrammar, LeftLinearGrammar, Production


@pytest.fixture
def anbn():
    """S -> a S b | epsilon."""
    return ContextFreeGrammar(
        nonterminals={"S"},
        terminals={"a", "b"},
        productions=[Production("S", ("a", "S", "b")), Production("S", ())],
        start="S",
    )


class TestProduction:
    def test_repr(self):
        assert "ε" in repr(Production("S", ()))

    def test_validation(self):
        with pytest.raises(ValueError):
            ContextFreeGrammar({"S"}, {"a"}, [Production("X", ("a",))], "S")
        with pytest.raises(ValueError):
            ContextFreeGrammar({"S"}, {"a"}, [Production("S", ("z",))], "S")
        with pytest.raises(ValueError):
            ContextFreeGrammar({"S"}, {"S"}, [], "S")  # overlap
        with pytest.raises(ValueError):
            ContextFreeGrammar({"S"}, {"a"}, [], "X")  # unknown start


class TestLeftLinear:
    def test_to_nfa(self):
        grammar = LeftLinearGrammar(
            nonterminals={"A", "B"},
            terminals={"x", "y"},
            productions=[
                Production("A", ("x", "B")),
                Production("B", ("x", "B")),
                Production("B", ("y",)),
            ],
            start="A",
        )
        nfa = grammar.to_nfa()
        assert nfa.accepts(("x", "y"))
        assert nfa.accepts(("x", "x", "x", "y"))
        assert not nfa.accepts(("x",))
        assert not nfa.accepts(("y",))

    def test_epsilon_production_makes_nonterminal_accepting(self):
        grammar = LeftLinearGrammar(
            {"A"}, {"x"}, [Production("A", ("x", "A")), Production("A", ())], "A"
        )
        nfa = grammar.to_nfa()
        assert nfa.accepts(())
        assert nfa.accepts(("x", "x"))

    def test_rejects_long_bodies(self):
        with pytest.raises(ValueError):
            LeftLinearGrammar({"A"}, {"x"}, [Production("A", ("x", "x", "A"))], "A")


class TestContextFree:
    def test_membership(self, anbn):
        assert anbn.accepts(())
        assert anbn.accepts(("a", "b"))
        assert anbn.accepts(("a", "a", "b", "b"))
        assert not anbn.accepts(("a", "b", "b"))
        assert not anbn.accepts(("b", "a"))

    def test_nullable_and_empty(self, anbn):
        assert anbn.generates_empty_word()
        assert not anbn.is_empty()
        dead = ContextFreeGrammar({"S"}, {"a"}, [Production("S", ("a", "S"))], "S")
        assert dead.is_empty()

    def test_enumerate_words(self, anbn):
        words = set(anbn.enumerate_words(4))
        assert words == {(), ("a", "b"), ("a", "a", "b", "b")}

    def test_cnf_preserves_language(self, anbn):
        cnf = anbn.to_cnf()
        for word in [(), ("a", "b"), ("a", "a", "b", "b"), ("a", "a", "b")]:
            assert cnf.accepts(word) == anbn.accepts(word)

    def test_greibach_form_and_language(self, anbn):
        gnf = anbn.to_greibach()
        assert gnf.is_greibach()
        assert set(gnf.enumerate_words(4)) == set(anbn.enumerate_words(4))

    def test_greibach_on_already_greibach_grammar(self):
        grammar = ContextFreeGrammar(
            {"S", "B"},
            {"a", "b"},
            [Production("S", ("a", "S", "B")), Production("S", ("a", "B")), Production("B", ("b",))],
            "S",
        )
        assert grammar.is_greibach()
        assert grammar.to_greibach() is grammar

    def test_greibach_with_left_recursion(self):
        # S -> S a | b  (language: b a*)
        grammar = ContextFreeGrammar(
            {"S"}, {"a", "b"}, [Production("S", ("S", "a")), Production("S", ("b",))], "S"
        )
        gnf = grammar.to_greibach()
        assert gnf.is_greibach()
        expected = {("b",), ("b", "a"), ("b", "a", "a")}
        assert expected <= set(gnf.enumerate_words(3))
        assert ("a",) not in set(gnf.enumerate_words(3))

    def test_productions_for(self, anbn):
        assert len(anbn.productions_for("S")) == 2
        assert anbn.is_terminal("a")
        assert not anbn.is_terminal("S")
