"""The object-based data model of Section 2 of the paper.

A *database schema* is a triple ``D = (C, isa, A)`` where ``(C, isa)`` is a
specialization graph (an acyclic class hierarchy whose weakly-connected
components are rooted DAGs) and ``A`` assigns pairwise-disjoint attribute
sets to classes.  A *database instance* assigns to each class a finite set of
abstract objects (respecting the hierarchy), to each object a value for each
attribute defined on its classes, and records the next fresh object
identifier.

This subpackage is the substrate every other part of the reproduction is
built on: the update languages of :mod:`repro.language` transform instances,
and the migration-pattern machinery of :mod:`repro.core` observes the role
sets of objects across sequences of such transformations.
"""

from repro.model.errors import (
    BindingError,
    ConditionError,
    InstanceError,
    ReproError,
    SchemaError,
    UpdateError,
)
from repro.model.values import Assignment, ObjectId, Variable
from repro.model.schema import DatabaseSchema
from repro.model.conditions import (
    AtomicCondition,
    Condition,
    EQ,
    NEQ,
    UNSATISFIABLE,
)
from repro.model.instance import DatabaseInstance

__all__ = [
    "ReproError",
    "SchemaError",
    "InstanceError",
    "UpdateError",
    "ConditionError",
    "BindingError",
    "Variable",
    "Assignment",
    "ObjectId",
    "DatabaseSchema",
    "DatabaseInstance",
    "AtomicCondition",
    "Condition",
    "EQ",
    "NEQ",
    "UNSATISFIABLE",
]
