"""Per-object DFA cursors over compiled specifications.

A cursor is nothing more than a small integer -- the current state of one
object's history inside a :class:`repro.engine.compiler.CompiledSpec` table.
:class:`HistoryCursor` wraps a single object for interactive use;
:class:`CursorTable` holds the states of a whole population of objects
against one spec and is what the streaming engine advances event by event.

Cursor states deliberately do **not** hold a reference to the compiled
table: the engine re-resolves the spec through its LRU cache on every
batch, so an eviction (and deterministic recompilation) between two events
of the same object is invisible to the cursor.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence, Tuple

from repro.engine.compiler import CompiledSpec

Symbol = Hashable
ObjectId = Hashable


class HistoryCursor:
    """The incremental membership state of one object history."""

    __slots__ = ("_spec", "_state", "_events")

    def __init__(self, spec: CompiledSpec) -> None:
        self._spec = spec
        self._state = spec.initial
        self._events = 0

    @property
    def state(self) -> int:
        """The current table state."""
        return self._state

    @property
    def events_seen(self) -> int:
        """How many events have been consumed."""
        return self._events

    @property
    def accepted(self) -> bool:
        """Whether the history consumed so far is in the specification."""
        return self._spec.is_accepting(self._state)

    @property
    def doomed(self) -> bool:
        """Whether no continuation of the history can ever be accepted."""
        return self._spec.is_doomed(self._state)

    def advance(self, symbol: Symbol) -> "HistoryCursor":
        """Consume one event (no-op once doomed: the verdict is final)."""
        self._events += 1
        state = self._state
        if not self._spec.is_doomed(state):
            self._state = self._spec.advance(state, symbol)
        return self

    def advance_many(self, word: Sequence[Symbol]) -> "HistoryCursor":
        """Consume a run of events.

        Table/codes/doomed lookups are hoisted out of the per-event loop
        (mirroring :meth:`CursorTable.advance_events`) instead of re-entering
        :meth:`advance` per event; once the cursor is doomed the rest of the
        word is consumed without touching the table -- doomed states are
        absorbing, so the verdict is already final.
        """
        if not isinstance(word, (list, tuple, str)):
            word = list(word)
        spec = self._spec
        table = spec.table
        code_of = spec.codes.get
        doomed = spec.doomed
        width = spec.n_symbols
        dead = spec.dead
        state = self._state
        for symbol in word:
            if doomed[state]:
                break
            code = code_of(symbol, -1)
            state = dead if code < 0 else table[state * width + code]
        self._state = state
        self._events += len(word)
        return self


class CursorTable:
    """Object-id -> table-state for a population checked against one spec."""

    __slots__ = ("_states",)

    def __init__(self) -> None:
        self._states: Dict[ObjectId, int] = {}

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, object_id: object) -> bool:
        return object_id in self._states

    def objects(self) -> Tuple[ObjectId, ...]:
        """Every object that has produced at least one event."""
        return tuple(self._states)

    def state_of(self, spec: CompiledSpec, object_id: ObjectId) -> int:
        """The current state of one object (its initial state if unseen)."""
        return self._states.get(object_id, spec.initial)

    def advance(self, spec: CompiledSpec, object_id: ObjectId, symbol: Symbol) -> int:
        """Advance one object by one event and return its new state."""
        states = self._states
        state = states.get(object_id, spec.initial)
        if not spec.doomed[state]:
            state = spec.advance(state, symbol)
            states[object_id] = state
        else:
            states.setdefault(object_id, state)
        return state

    def advance_events(
        self, spec: CompiledSpec, events: Iterable[Tuple[ObjectId, Symbol]]
    ) -> int:
        """Advance a batch of ``(object_id, symbol)`` events; returns the count.

        The hot loop of the streaming engine: table/codes/doomed lookups are
        hoisted out of the per-event iteration so each event costs one dict
        get, one code lookup and one array read.
        """
        states = self._states
        table = spec.table
        code_of = spec.codes.get
        doomed = spec.doomed
        width = spec.n_symbols
        initial = spec.initial
        dead = spec.dead
        count = 0
        for object_id, symbol in events:
            count += 1
            state = states.get(object_id, initial)
            if doomed[state]:
                states.setdefault(object_id, state)
                continue
            code = code_of(symbol, -1)
            states[object_id] = dead if code < 0 else table[state * width + code]
        return count

    def verdict(self, spec: CompiledSpec, object_id: ObjectId) -> bool:
        """Whether one object's history so far satisfies the spec."""
        return bool(spec.accepting[self._states.get(object_id, spec.initial)])

    def verdicts(self, spec: CompiledSpec) -> Dict[ObjectId, bool]:
        """The verdict of every tracked object."""
        accepting = spec.accepting
        return {object_id: bool(accepting[state]) for object_id, state in self._states.items()}


__all__ = ["HistoryCursor", "CursorTable"]
