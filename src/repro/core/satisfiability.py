"""Satisfaction / generation / characterization of inventories (Definition 3.5, Corollary 3.3).

A transaction schema ``Σ`` *satisfies* an inventory ``L`` (with respect to a
pattern kind) when every pattern it can produce lies in ``L``; it
*generates* ``L`` when it can produce every pattern of ``L``; it
*characterizes* ``L`` when both hold.  For SL schemas all three questions
are decidable because the pattern families are regular (Theorem 3.2); the
functions here combine :class:`repro.core.sl_analysis.SLMigrationAnalysis`
with the regular-language decision procedures and also report
counterexamples, which the examples and benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.inventory import MigrationInventory, coerce_inventory
from repro.core.patterns import MigrationPattern
from repro.core.sl_analysis import PATTERN_KINDS, SLMigrationAnalysis
from repro.language.transactions import TransactionSchema
from repro.model.errors import AnalysisError

SchemaOrAnalysis = Union[TransactionSchema, SLMigrationAnalysis]
#: A constraint argument: an inventory, a compiled MCL constraint, an
#: automaton, or MCL source text (compiled against the analysed schema).
ConstraintLike = Union[MigrationInventory, str, object]


@dataclass(frozen=True)
class ConstraintCheck:
    """The outcome of checking one schema against one inventory."""

    kind: str
    satisfies: bool
    generates: bool
    #: A pattern the schema produces but the inventory forbids (if any).
    violation: Optional[MigrationPattern]
    #: A pattern the inventory allows but the schema cannot produce (if any).
    missing: Optional[MigrationPattern]

    @property
    def characterizes(self) -> bool:
        """Both satisfies and generates."""
        return self.satisfies and self.generates

    def summary(self) -> str:
        """A one-line human-readable verdict."""
        verdict = []
        verdict.append("satisfies" if self.satisfies else f"violates (e.g. {self.violation!r})")
        verdict.append("generates" if self.generates else f"does not generate (e.g. {self.missing!r})")
        return f"[{self.kind}] " + ", ".join(verdict)


def _as_analysis(schema: SchemaOrAnalysis) -> SLMigrationAnalysis:
    if isinstance(schema, SLMigrationAnalysis):
        return schema
    if isinstance(schema, TransactionSchema):
        return SLMigrationAnalysis(schema)
    raise AnalysisError(f"expected a TransactionSchema or SLMigrationAnalysis, got {type(schema).__name__}")


def _as_inventory(constraint: ConstraintLike, analysis: SLMigrationAnalysis) -> MigrationInventory:
    """Coerce a constraint argument to an inventory.

    MCL source text (a string) is compiled against the analysed database
    schema; compiled MCL constraints and automata are wrapped directly.
    """
    if isinstance(constraint, str):
        from repro.spec import compile_constraint

        return coerce_inventory(compile_constraint(constraint, analysis.schema))
    return coerce_inventory(constraint)


def check_constraint(
    schema: SchemaOrAnalysis,
    inventory: ConstraintLike,
    kind: str = "all",
) -> ConstraintCheck:
    """Decide satisfaction and generation of ``inventory`` and report witnesses.

    ``inventory`` may be a :class:`repro.core.inventory.MigrationInventory`,
    a compiled MCL constraint, or MCL source text (compiled against the
    schema under analysis).
    """
    analysis = _as_analysis(schema)
    constraint = _as_inventory(inventory, analysis)
    family = analysis.pattern_family(kind)
    # One lazy product exploration per direction yields the verdict and the
    # shortest witness together (previously: a second, eager search each).
    satisfies, violation = family.subset_check(constraint)
    generates, missing = constraint.subset_check(family)
    return ConstraintCheck(kind, satisfies, generates, violation, missing)


def satisfies(schema: SchemaOrAnalysis, inventory: ConstraintLike, kind: str = "all") -> bool:
    """Whether the schema produces only patterns allowed by the inventory."""
    return check_constraint(schema, inventory, kind).satisfies


def generates(schema: SchemaOrAnalysis, inventory: ConstraintLike, kind: str = "all") -> bool:
    """Whether the schema can produce every pattern of the inventory."""
    return check_constraint(schema, inventory, kind).generates


def characterizes(schema: SchemaOrAnalysis, inventory: ConstraintLike, kind: str = "all") -> bool:
    """Whether the schema both satisfies and generates the inventory."""
    return check_constraint(schema, inventory, kind).characterizes


def check_all_kinds(
    schema: SchemaOrAnalysis, inventory: ConstraintLike
) -> Dict[str, ConstraintCheck]:
    """Run :func:`check_constraint` for every pattern kind."""
    analysis = _as_analysis(schema)
    return {kind: check_constraint(analysis, inventory, kind) for kind in PATTERN_KINDS}


__all__ = [
    "ConstraintCheck",
    "check_constraint",
    "check_all_kinds",
    "satisfies",
    "generates",
    "characterizes",
]
