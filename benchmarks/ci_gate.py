"""Benchmark regression gate for CI.

Compares a fresh pytest-benchmark run (``BENCH_ci.json``) against the
committed baseline (``benchmarks/BENCH_baseline.json``) and fails when any
tracked case's median regresses by more than the threshold (30% by
default).

Raw medians are not comparable across machines, so both sides are
normalized by a *calibration* measurement: the time of a fixed pure-Python
spin workload, measured on the machine that produced the numbers.  The
baseline stores its own calibration; the gate measures the current
machine's calibration at comparison time (it runs right after the
benchmarks, on the same runner).  What is compared is therefore "medians
in units of local spin time", which cancels CPU speed while preserving
algorithmic regressions.

Usage::

    python -m pytest benchmarks -q --benchmark-only --benchmark-json BENCH_ci.json
    python benchmarks/ci_gate.py compare --current BENCH_ci.json
    python benchmarks/ci_gate.py update --current BENCH_ci.json   # refresh baseline

Only cases whose baseline median is at least ``--min-track`` seconds are
tracked: single-shot micro-benchmarks are too noisy for a 30% gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_baseline.json"
DEFAULT_THRESHOLD = 0.30
DEFAULT_MIN_TRACK = 0.05

#: Cases measured to swing more than the threshold between identical runs
#: (allocation-heavy explorers whose run-to-run variance is machine noise,
#: not regression signal).  They still run -- their correctness assertions
#: gate the job -- but their timings are not tracked.
UNSTABLE_CASES = {
    "test_e12_bounded_enumeration_agrees_with_analysis",
}

#: Headline cases the gate insists on seeing in every run, whatever the
#: committed baseline tracks: if one of these disappears from the report
#: (renamed, deleted, or silently skipped) the gate fails structurally even
#: after a baseline refresh.  Keep in sync when headline benchmarks move.
EXPECTED_CASES = {
    "test_e20_streaming_beats_naive_accepts_reruns",
    "test_e22_mcl_text_to_check_batch_end_to_end",
    "test_e23_fused_streaming_beats_per_spec_sweeps",
    "test_e23_fused_batch_checking_beats_per_spec_accepts",
    "test_e23_shard_payloads_shrink",
    "test_e24_snapshot_restore_beats_refeeding",
    "test_e25_vector_streaming_beats_fused",
    "test_e25_raw_shard_dispatch_beats_zlib",
    "test_e26_metrics_enabled_streaming_overhead",
    "test_e27_wal_overhead_and_recovery_beat_refeeding",
    "test_e28_enforced_feed_overhead",
}

#: Iterations of the calibration workload; sized to take ~100ms on a dev VM.
_CALIBRATION_N = 400_000


def _spin() -> int:
    """Arithmetic plus dict/frozenset churn, mirroring the benchmarks' mix."""
    total = 0
    table = {}
    for value in range(_CALIBRATION_N):
        total += value * value
        if value % 16 == 0:
            table[frozenset((value % 97, value % 31))] = total
    return total + len(table)


def calibrate(repeats: int = 5) -> float:
    """Seconds per calibration workload on this machine (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _spin()
        best = min(best, time.perf_counter() - start)
    return best


def load_medians(benchmark_json: Path) -> Dict[str, float]:
    """``case name -> median seconds`` from a pytest-benchmark JSON report."""
    with open(benchmark_json) as handle:
        report = json.load(handle)
    return {entry["name"]: entry["stats"]["median"] for entry in report["benchmarks"]}


def update_baseline(current: Path, baseline: Path, min_track: float) -> int:
    """Write a fresh baseline from ``current``, keeping only stable cases."""
    medians = load_medians(current)
    tracked = {
        name: median
        for name, median in sorted(medians.items())
        if median >= min_track and name not in UNSTABLE_CASES
    }
    dropped = sorted(set(medians) - set(tracked))
    payload = {
        "calibration": calibrate(),
        "min_track": min_track,
        "cases": tracked,
    }
    with open(baseline, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline: {len(tracked)} tracked cases -> {baseline}")
    if dropped:
        print(f"not tracked (unstable, or median < {min_track}s): {', '.join(dropped)}")
    return 0


def compare(current: Path, baseline: Path, threshold: float) -> int:
    """Exit status 0 when every tracked case is within the threshold.

    Returns 1 for timing regressions (worth confirming with a retry run)
    and 2 for structural failures -- a tracked case missing from the
    current run -- which a retry cannot fix.
    """
    with open(baseline) as handle:
        base = json.load(handle)
    current_medians = load_medians(current)
    base_calibration = base["calibration"]
    current_calibration = calibrate()
    print(
        f"calibration: baseline {base_calibration * 1000:.1f}ms, "
        f"current {current_calibration * 1000:.1f}ms"
    )

    failures = []
    structural = False
    for name in sorted(EXPECTED_CASES):
        if name not in current_medians:
            failures.append(f"{name}: headline case missing from the current run")
            structural = True
    for name, base_median in sorted(base["cases"].items()):
        if name in UNSTABLE_CASES:
            continue
        if name not in current_medians:
            if name not in EXPECTED_CASES:  # headline misses are reported above
                failures.append(f"{name}: tracked case missing from the current run")
            structural = True
            continue
        base_norm = base_median / base_calibration
        current_norm = current_medians[name] / current_calibration
        change = current_norm / base_norm - 1.0
        verdict = "FAIL" if change > threshold else "ok"
        print(
            f"  [{verdict}] {name}: baseline {base_median * 1000:.1f}ms, "
            f"current {current_medians[name] * 1000:.1f}ms, "
            f"normalized change {change:+.1%}"
        )
        if change > threshold:
            failures.append(
                f"{name}: normalized median regressed {change:+.1%} (> {threshold:.0%})"
            )

    if failures:
        print(f"\nregression gate FAILED ({len(failures)} case(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 2 if structural else 1
    print(f"\nregression gate passed: {len(base['cases'])} tracked cases within {threshold:.0%}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    compare_cmd = sub.add_parser("compare", help="gate a fresh run against the baseline")
    compare_cmd.add_argument("--current", type=Path, required=True)
    compare_cmd.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    compare_cmd.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)

    update_cmd = sub.add_parser("update", help="rewrite the committed baseline")
    update_cmd.add_argument("--current", type=Path, required=True)
    update_cmd.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    update_cmd.add_argument("--min-track", type=float, default=DEFAULT_MIN_TRACK)

    args = parser.parse_args(argv)
    if args.command == "compare":
        return compare(args.current, args.baseline, args.threshold)
    return update_baseline(args.current, args.baseline, args.min_track)


if __name__ == "__main__":
    raise SystemExit(main())
