"""Path expressions as migration inventories (Example 3.3, Figure 3).

Path expressions [Campbell & Habermann] restrict the order in which the
operations of a shared abstract data type may execute.  Example 3.3 models
them with migration inventories: each operation ``op`` of the data type
becomes a subclass of a root class ``RESOURCE``, the execution of ``op`` is
modelled by migrating the resource object into the role set ``{RESOURCE,
op}``, and the path expression ``(p(q ∪ r)s)*`` becomes the inventory
``Init(∅* (ω_p (ω_q ∪ ω_r) ω_s)* ∅*)``.

This module builds the Figure 3 schema for an arbitrary operation alphabet,
converts textual path expressions into inventories, and (using the Lemma 3.4
synthesis) produces SL transaction schemas that *enforce* a path expression,
closing the loop the paper sketches ("transactions can be designed to
satisfy automatically the migration inventory").
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.inventory import MigrationInventory
from repro.core.rolesets import EMPTY_ROLE_SET, RoleSet
from repro.core.synthesis import SynthesisResult, synthesize_sl_schema
from repro.formal.regex import Regex, parse_regex
from repro.model.schema import DatabaseSchema

ROOT = "RESOURCE"

DEFAULT_OPERATIONS: Tuple[str, ...] = ("p", "q", "r", "s")


def schema(operations: Sequence[str] = DEFAULT_OPERATIONS) -> DatabaseSchema:
    """The Figure 3 schema: one subclass of ``RESOURCE`` per operation.

    The root carries three attributes so that the Lemma 3.4 synthesis can be
    applied directly to inventories over this schema.
    """
    ops = tuple(operations)
    return DatabaseSchema(
        classes={ROOT, *ops},
        isa={(op, ROOT) for op in ops},
        attributes={ROOT: {"State", "Choice", "Mark"}, **{op: set() for op in ops}},
    )


def role_sets(operations: Sequence[str] = DEFAULT_OPERATIONS) -> Dict[str, RoleSet]:
    """Role-set symbols: one per operation (``{RESOURCE, op}``) plus ``0`` and ``R``."""
    mapping: Dict[str, RoleSet] = {
        "0": EMPTY_ROLE_SET,
        "R": RoleSet({ROOT}),
    }
    for op in operations:
        mapping[op] = RoleSet({ROOT, op})
    return mapping


def path_expression_regex(
    text: str, operations: Sequence[str] = DEFAULT_OPERATIONS
) -> Regex:
    """Parse a path expression such as ``"(p(q|r)s)*"`` over the operation alphabet."""
    symbols = {op: RoleSet({ROOT, op}) for op in operations}
    return parse_regex(text, symbols)


def path_expression_inventory(
    text: str, operations: Sequence[str] = DEFAULT_OPERATIONS
) -> MigrationInventory:
    """The inventory ``Init(∅* η ∅*)`` for the path expression ``text`` (Example 3.3)."""
    mapping = role_sets(operations)
    padded = f"0* ({text}) 0*"
    return MigrationInventory.from_text(
        padded, {**mapping}, alphabet=mapping.values(), prefix_close=True
    )


def enforcing_transactions(
    text: str, operations: Sequence[str] = DEFAULT_OPERATIONS
) -> SynthesisResult:
    """SL transactions whose migration patterns are exactly the path expression's prefixes.

    Uses the Lemma 3.4 synthesis on the Figure 3 schema; the resulting
    transaction schema *characterizes* :func:`path_expression_inventory`.
    """
    d = schema(operations)
    expression = path_expression_regex(text, operations)
    return synthesize_sl_schema(d, expression, control_attributes=("State", "Choice", "Mark"))


__all__ = [
    "ROOT",
    "DEFAULT_OPERATIONS",
    "schema",
    "role_sets",
    "path_expression_regex",
    "path_expression_inventory",
    "enforcing_transactions",
]
