"""Streaming history-checker engine (the scale layer).

The analyses in :mod:`repro.core` decide properties of *specifications*;
this subpackage checks *data* against them at volume: millions of object
histories, delivered as batches or as one interleaved event stream.  The
pipeline is compile → encode → fuse → shard/stream:

* :mod:`repro.engine.compiler` -- compile a spec automaton once into a
  minimized DFA with a flat integer transition table, plus a remap array
  from the engine's shared alphabet (:class:`~repro.engine.compiler.
  CompiledSpec`);
* :mod:`repro.engine.batch` -- the columnar pipeline: encode-once event
  batches and history sets over the shared alphabet, the fused multi-spec
  product kernel, and the compact shard payloads;
* :mod:`repro.engine.vector` -- the numpy gather kernel over the same
  product groups (flat narrow-dtype transition tables, chunked
  first-occurrence peeling, raw buffer-protocol shard payloads); selected
  automatically when numpy is importable (``kernel="auto"``);
* :mod:`repro.engine.cache` -- bounded LRU over compiled specs and fused
  kernels, safe to evict mid-stream because compilation is deterministic;
* :mod:`repro.engine.cursors` -- per-object integer cursors advanced event
  by event (the reference path the fused kernel is pinned against);
* :mod:`repro.engine.executor` -- serial and process-pool shard backends
  for batch checking;
* :mod:`repro.engine.supervisor` -- fault supervision over the shard
  backends: per-shard deadlines, bounded retry with backoff + jitter, pool
  respawn, poison-shard quarantine, graceful degradation to serial;
* :mod:`repro.engine.diagnostics` -- violation reports: fatal event,
  minimal counterexample, shortest conforming completion, MCL clause spans;
* :mod:`repro.engine.snapshot` -- checkpoint/restore of streaming sessions
  (versioned wire format, fingerprint-validated state translation);
* :mod:`repro.engine.journal` -- write-ahead event journaling plus
  checkpoints: crash-durable streaming sessions and ``recover_stream``;
* :mod:`repro.engine.engine` -- :class:`~repro.engine.engine.
  HistoryCheckerEngine`, the façade tying the pieces together.
"""

from repro.engine.batch import (
    PRODUCT_STATE_CAP,
    ColumnarHistorySet,
    EncodedBatch,
    FusedKernel,
    ObjectInterner,
    check_columnar_shard,
    make_shard_task,
)
from repro.engine.cache import SpecCache
from repro.engine.compiler import CompiledSpec, compile_spec
from repro.engine.cursors import CursorTable, HistoryCursor
from repro.engine.diagnostics import (
    ClauseDiagnosis,
    EnforcementError,
    EnforcementReport,
    RejectedEvent,
    Violation,
    diagnose,
)
from repro.engine.engine import (
    HistoryCheckerEngine,
    RevalidationReport,
    SpecLintFinding,
    StreamChecker,
)
from repro.engine.executor import (
    MIN_SHARD_EVENTS,
    ProcessPoolBackend,
    ProcessPoolShardExecutor,
    SerialExecutor,
    shard,
    shard_bounds,
    shard_bounds_by_events,
)
from repro.engine.journal import DurableStream, JournalError, open_durable, recover
from repro.engine.snapshot import FORMAT_VERSION, SnapshotError, dump_stream, load_stream
from repro.engine.supervisor import (
    FaultPolicy,
    ShardFailure,
    SupervisedExecutor,
    zeroed_stats,
)
from repro.engine.vector import HAVE_NUMPY, VectorKernel

__all__ = [
    "CompiledSpec",
    "compile_spec",
    "SpecCache",
    "HistoryCursor",
    "CursorTable",
    "ObjectInterner",
    "EncodedBatch",
    "ColumnarHistorySet",
    "FusedKernel",
    "VectorKernel",
    "HAVE_NUMPY",
    "PRODUCT_STATE_CAP",
    "MIN_SHARD_EVENTS",
    "make_shard_task",
    "check_columnar_shard",
    "SerialExecutor",
    "ProcessPoolBackend",
    "ProcessPoolShardExecutor",
    "SupervisedExecutor",
    "FaultPolicy",
    "ShardFailure",
    "DurableStream",
    "JournalError",
    "open_durable",
    "recover",
    "shard",
    "shard_bounds",
    "shard_bounds_by_events",
    "HistoryCheckerEngine",
    "StreamChecker",
    "SpecLintFinding",
    "RevalidationReport",
    "ClauseDiagnosis",
    "Violation",
    "diagnose",
    "EnforcementError",
    "EnforcementReport",
    "RejectedEvent",
    "zeroed_stats",
    "FORMAT_VERSION",
    "SnapshotError",
    "dump_stream",
    "load_stream",
]
