"""Section 5: auditing transaction-ordering rules with the reachability analysis.

The immigration office of Example 5.1 must never let a type-C visa holder
become an immigrant without the mandated absence.  The office's rules are an
inflow schema (a precedence relation over its transactions); this example
audits three variants with the decidable reachability analysis of
Theorem 5.1:

* the lawful ordering -- the upgrade is reachable, and the witness the
  analyzer returns is exactly the mandated departure / return / grant path;
* a corrupted ordering under *inflow* semantics -- still reachable, because
  unrelated transactions can be interleaved to satisfy the consecutive-pair
  constraint;
* the same corrupted ordering under *script* semantics (the precedence
  constrains the transactions touching the person herself) -- the upgrade
  becomes unreachable.

Run with:  python examples/reachability_audit.py
"""

from repro import ReachabilityAnalyzer
from repro.workloads import immigration


def audit(title: str, schema) -> None:
    analyzer = ReachabilityAnalyzer(schema)
    result = analyzer.check(immigration.visa_holder_assertion(), immigration.immigrant_assertion())
    print(f"--- {title} ---")
    print("  can every current visa-C holder become an immigrant?", result.reachable_everywhere)
    witness = result.a_witness()
    if witness:
        print("  shortest witness sequence:", " -> ".join(witness))
    else:
        print("  no applicable transaction sequence reaches the immigrant status")
    print()


def main() -> None:
    audit("lawful ordering (inflow semantics)", immigration.inflow_schema())
    audit("corrupted ordering (inflow semantics)", immigration.corrupt_inflow_schema())
    audit("corrupted ordering (script semantics)", immigration.corrupt_script_schema())


if __name__ == "__main__":
    main()
