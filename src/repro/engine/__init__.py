"""Streaming history-checker engine (the scale layer).

The analyses in :mod:`repro.core` decide properties of *specifications*;
this subpackage checks *data* against them at volume: millions of object
histories, delivered as batches or as one interleaved event stream.  The
pipeline is compile → shard → stream:

* :mod:`repro.engine.compiler` -- compile a spec automaton once into a
  minimized DFA with a flat integer transition table over the interned
  role-set alphabet (:class:`~repro.engine.compiler.CompiledSpec`);
* :mod:`repro.engine.cache` -- bounded LRU over compiled specs, safe to
  evict mid-stream because compilation is deterministic;
* :mod:`repro.engine.cursors` -- per-object integer cursors advanced event
  by event, with doomed-state short-circuiting;
* :mod:`repro.engine.executor` -- serial and process-pool shard backends
  for batch checking;
* :mod:`repro.engine.engine` -- :class:`~repro.engine.engine.
  HistoryCheckerEngine`, the façade tying the pieces together.
"""

from repro.engine.cache import SpecCache
from repro.engine.compiler import CompiledSpec, compile_spec
from repro.engine.cursors import CursorTable, HistoryCursor
from repro.engine.engine import HistoryCheckerEngine, StreamChecker
from repro.engine.executor import ProcessPoolBackend, SerialExecutor, shard

__all__ = [
    "CompiledSpec",
    "compile_spec",
    "SpecCache",
    "HistoryCursor",
    "CursorTable",
    "SerialExecutor",
    "ProcessPoolBackend",
    "shard",
    "HistoryCheckerEngine",
    "StreamChecker",
]
