"""E28: preventive enforcement is a mask lookup, not a replay.

The ``feed_events(..., enforce=True)`` gate screens every event against the
per-state admissibility masks before applying it -- one successor gather and
one ``alive``-flag read per kernel group.  The claim pinned here, over the
10^5-account / six-spec / ~10^6-event banking stream: the screened feed
costs **at most 10% over the plain feed**.  Anything more would mean the
gate is replaying histories instead of reading masks.

Plain and enforced feeds are interleaved and judged on the best
back-to-back pair (the E27 protocol): within a round both variants see the
same machine conditions, so the per-round ratio cancels load swings.
Before any timing claim, the enforced session is asserted to have admitted
exactly the events the batch screening oracle (``screen_histories``) calls
salvageable -- and to contain no doomed object at all, which is the point
of the gate.
"""

import gc
import time

from repro.engine import HistoryCheckerEngine
from repro.workloads import generators

#: Raw events per fed batch -- the granularity a collector would deliver.
BATCH_EVENTS = 20_000


def _registered(suite):
    engine = HistoryCheckerEngine()
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    for name in suite:
        engine.compiled(name)  # compile outside every timer
    return engine


def test_e28_enforced_feed_overhead(benchmark, run_once):
    histories, events, suite = generators.conforming_banking_stream(
        seed=2028, objects=100_000, mean_length=10
    )
    step = BATCH_EVENTS
    slices = [events[start : start + step] for start in range(0, len(events), step)]
    engine = _registered(suite)

    def feed_plain():
        stream = engine.open_stream()
        for chunk in slices:
            stream.feed_events(chunk)
        return stream

    def feed_enforced():
        stream = engine.open_stream()
        admitted = rejected = 0
        for chunk in slices:
            report = stream.feed_events(chunk, enforce=True)
            admitted += int(report)
            # rejection_count, not len(report.rejected): counting must not
            # materialize the deferred per-event records.
            rejected += report.rejection_count
        return stream, admitted, rejected

    # Correctness before timing (the exact gate-vs-oracle equality lives in
    # the differential fuzz suite): mostly-conforming traffic still violates
    # somewhere (the 2% noise), so the gate does real screening work here,
    # and after a full enforced feed no tracked object may be doomed -- the
    # invariant the gate exists to maintain.
    stream, admitted, rejected = feed_enforced()
    assert rejected and admitted + rejected == len(events)
    assert stream.events_seen == admitted
    for name in suite:
        for object_id in stream.objects(name):
            assert not stream.doomed(name, object_id), (name, object_id)
    del stream

    feed_plain()  # warm the alphabet, kernels and allocator outside the timers

    rounds = 5
    pairs = []
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        plain = feed_plain()
        plain_pass = time.perf_counter() - start
        del plain

        gc.collect()
        start = time.perf_counter()
        enforced, _, _ = feed_enforced()
        pairs.append((plain_pass, time.perf_counter() - start))
        del enforced

    plain_elapsed, enforced_elapsed = min(pairs, key=lambda pair: pair[1] / pair[0])

    def enforced_tracked():
        return feed_enforced()

    run_once(benchmark, enforced_tracked)

    overhead = enforced_elapsed / plain_elapsed - 1.0
    print(
        f"\n[E28] {len(histories)} objects x {len(suite)} specs "
        f"({len(events)} events): plain feed {plain_elapsed * 1000:.0f}ms, "
        f"enforced feed {enforced_elapsed * 1000:.0f}ms ({overhead:+.1%}), "
        f"{rejected} events refused ({rejected / len(events):.2%} of the stream)"
    )

    assert overhead <= 0.10, (
        f"enforce=True cost {overhead:.1%} over the plain feed (> 10%): "
        "the gate should be reading admissibility masks, not replaying"
    )
