"""The engine's instrument catalog, pre-resolved for the hot path.

:class:`EngineInstruments` looks every instrument up **once** at engine
construction and stores them on slots, so an instrumented code path costs
one ``is not None`` check plus a bound-method call -- never a registry
lookup, never a label-dict allocation.  The catalog (names, kinds, labels)
is documented in ARCHITECTURE.md's observability section; the name prefix
is ``repro_``.

Engines may share the process default registry (the common case) or carry
a private :class:`repro.obs.metrics.MetricsRegistry` each, which keeps
future multi-tenant services' numbers isolated per tenant.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry

#: Pool round trips are milliseconds to seconds; feeds are sub-millisecond
#: to seconds.  One shared bucket ladder keeps exposition compact.
_LATENCY_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)


class EngineInstruments:
    """Every instrument the engine layers touch, resolved once.

    ``kind``-labelled kernel instruments are resolved lazily per kernel kind
    (:meth:`kernel`): an engine usually runs one kind, and the fused/vector
    split must stay visible in the exposition.
    """

    __slots__ = (
        "registry",
        # engine.py
        "events_total",
        "batches_total",
        "check_batches_total",
        "verdicts_pass",
        "verdicts_fail",
        "violations_total",
        "enforce_rejections",
        "streams_opened",
        # executor.py / shard dispatch
        "shards_total",
        "shard_payload_bytes",
        "pool_dispatch_seconds",
        "worker_cache_hits",
        "worker_cache_misses",
        "worker_cache_size",
        # cache.py
        "spec_cache_hits",
        "spec_cache_misses",
        "spec_cache_evictions",
        # snapshot.py
        "snapshot_dump_bytes",
        "snapshot_restore_bytes",
        "snapshot_state_translations",
        # supervisor.py
        "supervisor_events",
        # journal.py
        "journal_append_records",
        "journal_append_bytes",
        "journal_replay_records",
        "journal_replay_bytes",
        "journal_checkpoints",
        "journal_truncated_records",
        "stream_recoveries",
        # batch.py / vector.py, per kernel kind
        "_kernel_cache",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        counter = registry.counter
        self.events_total = counter(
            "repro_engine_events_total", "Events fed through streaming sessions"
        )
        self.batches_total = counter(
            "repro_engine_batches_total", "Event batches fed through streaming sessions"
        )
        self.check_batches_total = counter(
            "repro_engine_check_batches_total", "check_batch/check_batch_all invocations"
        )
        self.verdicts_pass = counter(
            "repro_engine_verdicts_total", "Batch verdicts produced", verdict="pass"
        )
        self.verdicts_fail = counter(
            "repro_engine_verdicts_total", "Batch verdicts produced", verdict="fail"
        )
        self.violations_total = counter(
            "repro_engine_violations_total", "Violation reports produced by explain()"
        )
        self.enforce_rejections = counter(
            "repro_engine_enforce_rejections_total",
            "Events refused by the feed_events(enforce=True) admissibility gate",
        )
        self.streams_opened = counter(
            "repro_engine_streams_opened_total", "Streaming sessions opened or restored"
        )
        self.shards_total = counter(
            "repro_engine_shards_total", "Columnar shards dispatched to an executor"
        )
        self.shard_payload_bytes = counter(
            "repro_engine_shard_payload_bytes_total", "Bytes of packed shard column payloads"
        )
        self.pool_dispatch_seconds = registry.histogram(
            "repro_engine_pool_dispatch_seconds",
            "Executor round-trip latency per sharded check_batch_all",
            buckets=_LATENCY_BUCKETS,
        )
        self.worker_cache_hits = counter(
            "repro_engine_worker_kernel_cache_hits_total",
            "Worker-local kernel cache hits (merged back from pool shards)",
        )
        self.worker_cache_misses = counter(
            "repro_engine_worker_kernel_cache_misses_total",
            "Worker-local kernel cache misses (kernel rebuilt worker-side)",
        )
        self.worker_cache_size = registry.gauge(
            "repro_engine_worker_kernel_cache_size",
            "Entries in the most recently reporting worker's kernel cache",
        )
        self.spec_cache_hits = counter(
            "repro_engine_cache_hits_total", "Compiled-artifact cache hits", cache="spec"
        )
        self.spec_cache_misses = counter(
            "repro_engine_cache_misses_total", "Compiled-artifact cache misses", cache="spec"
        )
        self.spec_cache_evictions = counter(
            "repro_engine_cache_evictions_total", "Compiled-artifact cache evictions", cache="spec"
        )
        self.snapshot_dump_bytes = counter(
            "repro_engine_snapshot_bytes_total", "Snapshot blob bytes", direction="dump"
        )
        self.snapshot_restore_bytes = counter(
            "repro_engine_snapshot_bytes_total", "Snapshot blob bytes", direction="restore"
        )
        self.snapshot_state_translations = counter(
            "repro_engine_snapshot_state_translations_total",
            "Occupied product states re-materialized during snapshot restore",
        )
        # Supervision events keyed by the SupervisedExecutor's internal
        # counter names; one labelled series per degradation-ladder rung.
        self.supervisor_events = {
            name: counter(
                "repro_supervisor_events_total",
                "Fault-supervision events by kind (repro.engine.supervisor)",
                event=event,
            )
            for name, event in (
                ("retries", "retry"),
                ("timeouts", "timeout"),
                ("respawns", "respawn"),
                ("quarantined", "quarantine"),
                ("degraded", "degrade"),
                ("shard_failures", "shard_failure"),
            )
        }
        self.journal_append_records = counter(
            "repro_journal_records_total", "Journal records processed", direction="append"
        )
        self.journal_replay_records = counter(
            "repro_journal_records_total", "Journal records processed", direction="replay"
        )
        self.journal_append_bytes = counter(
            "repro_journal_bytes_total", "Journal record bytes processed", direction="append"
        )
        self.journal_replay_bytes = counter(
            "repro_journal_bytes_total", "Journal record bytes processed", direction="replay"
        )
        self.journal_checkpoints = counter(
            "repro_journal_checkpoints_total", "Checkpoints written by durable streams"
        )
        self.journal_truncated_records = counter(
            "repro_journal_truncated_records_total",
            "Corrupt or torn journal tail records discarded during recovery",
        )
        self.stream_recoveries = counter(
            "repro_stream_recoveries_total",
            "Durable streaming sessions rebuilt by recover_stream",
        )
        self._kernel_cache: Dict[str, "KernelInstruments"] = {}

    def kernel(self, kind: str) -> "KernelInstruments":
        """The kernel-layer instruments for one kernel kind (cached)."""
        instruments = self._kernel_cache.get(kind)
        if instruments is None:
            instruments = self._kernel_cache[kind] = KernelInstruments(self.registry, kind)
        return instruments

    def cache_counters(self, cache: str):
        """``(hits, misses, evictions)`` counters for one named LRU cache."""
        counter = self.registry.counter
        return (
            counter("repro_engine_cache_hits_total", cache=cache),
            counter("repro_engine_cache_misses_total", cache=cache),
            counter("repro_engine_cache_evictions_total", cache=cache),
        )


class KernelInstruments:
    """The per-kind kernel counters (batch.py / vector.py hot layers)."""

    __slots__ = (
        "kind",
        "batches_total",
        "events_total",
        "histories_total",
        "sink_skips",
        "gather_rounds",
        "scalar_fallback_events",
        "plan_cache_hits",
        "plan_cache_misses",
    )

    def __init__(self, registry: MetricsRegistry, kind: str) -> None:
        self.kind = kind
        counter = registry.counter
        self.batches_total = counter(
            "repro_kernel_batches_total", "Encoded batches advanced by a kernel", kind=kind
        )
        self.events_total = counter(
            "repro_kernel_events_total", "Events advanced by a kernel", kind=kind
        )
        self.histories_total = counter(
            "repro_kernel_histories_total", "Whole histories checked by a kernel", kind=kind
        )
        self.sink_skips = counter(
            "repro_kernel_sink_skipped_passes_total",
            "Group passes skipped because the whole population sat on the doomed sink",
            kind=kind,
        )
        self.gather_rounds = counter(
            "repro_kernel_gather_rounds_total",
            "Vectorized peel/gather rounds executed",
            kind=kind,
        )
        self.scalar_fallback_events = counter(
            "repro_kernel_scalar_fallback_events_total",
            "Events advanced through the skew scalar fallback",
            kind=kind,
        )
        self.plan_cache_hits = counter(
            "repro_kernel_plan_cache_hits_total",
            "Batches advanced from a cached peel plan",
            kind=kind,
        )
        self.plan_cache_misses = counter(
            "repro_kernel_plan_cache_misses_total",
            "Batches whose peel plan was computed fresh",
            kind=kind,
        )


def resolve(setting, enabled: bool, default: MetricsRegistry) -> Optional[EngineInstruments]:
    """The engine's ``obs=`` parameter resolved to instruments (or ``None``).

    ``None`` follows the process switch (:func:`repro.obs.enabled`);
    ``True``/``False`` force it; a :class:`MetricsRegistry` instruments the
    engine against that private registry unconditionally.
    """
    if setting is None:
        return EngineInstruments(default) if enabled else None
    if setting is True:
        return EngineInstruments(default)
    if setting is False:
        return None
    if isinstance(setting, MetricsRegistry):
        return EngineInstruments(setting)
    if isinstance(setting, EngineInstruments):
        return setting
    raise TypeError(
        f"obs must be None, a bool, or a MetricsRegistry, not {type(setting).__name__}"
    )


__all__ = ["EngineInstruments", "KernelInstruments", "resolve"]
