"""The immigration-office reachability scenario of Example 5.1 (Section 5).

A person holding a type-C visa may not change status directly to immigrant:
she must first leave the country and stay abroad before becoming eligible.
The statuses are subclasses of ``PERSON``; a ``Status`` attribute mirrors the
current phase so that ``grant_immigrant_status`` is only *semantically*
applicable to eligible returnees, and the ordering rules of the office are
expressed as an inflow schema / script schema (Definitions 5.1 and 5.3).

The workload exposes three orderings used by the reachability experiments
(E16/E17):

* :func:`inflow_schema` -- the lawful ordering: granting immigrant status
  may only follow recording a return; reachability holds and the analyzer's
  witness is exactly the mandated departure / return / grant sequence.
* :func:`corrupt_inflow_schema` -- a deliberately broken ordering in which
  ``grant_immigrant_status`` may only follow ``enter_with_visa_c``.  Under
  *inflow* semantics the target is still reachable, because unrelated
  "filler" transactions may be interleaved to satisfy the consecutive-pair
  constraint -- a behaviour of Definition 5.1 the paper's Section 5
  discussion motivates scripts with.
* :func:`corrupt_script_schema` -- the same ordering under *script*
  semantics (the order constrains the transactions updating the person
  herself): the target becomes unreachable, demonstrating the difference
  between the two constructs.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.inflow import Assertion, InflowSchema, ScriptSchema
from repro.core.inventory import MigrationInventory
from repro.core.rolesets import EMPTY_ROLE_SET, RoleSet, enumerate_role_sets
from repro.formal import operations
from repro.formal import regex as rx
from repro.language.transactions import Transaction, TransactionSchema
from repro.language.updates import Create, Delete, Generalize, Modify, Specialize
from repro.model.conditions import Condition
from repro.model.schema import DatabaseSchema
from repro.model.values import Variable

PERSON = "PERSON"
VISA_C = "VISA_C_HOLDER"
ABROAD = "ABROAD"
ELIGIBLE = "ELIGIBLE_RETURNEE"
IMMIGRANT = "IMMIGRANT"

STATUS_VISA = "status:visa-c"
STATUS_ABROAD = "status:abroad"
STATUS_ELIGIBLE = "status:eligible"
STATUS_IMMIGRANT = "status:immigrant"


def schema() -> DatabaseSchema:
    """Statuses of a person known to the immigration office."""
    return DatabaseSchema(
        classes={PERSON, VISA_C, ABROAD, ELIGIBLE, IMMIGRANT},
        isa={
            (VISA_C, PERSON),
            (ABROAD, PERSON),
            (ELIGIBLE, PERSON),
            (IMMIGRANT, PERSON),
        },
        attributes={
            PERSON: {"Passport", "Status"},
            VISA_C: {"VisaNumber"},
            ABROAD: {"DepartureYear"},
            ELIGIBLE: {"ReturnYear"},
            IMMIGRANT: {"GreenCard"},
        },
    )


ROLE_PERSON = RoleSet({PERSON})
ROLE_VISA_C = RoleSet({PERSON, VISA_C})
ROLE_ABROAD = RoleSet({PERSON, ABROAD})
ROLE_ELIGIBLE = RoleSet({PERSON, ELIGIBLE})
ROLE_IMMIGRANT = RoleSet({PERSON, IMMIGRANT})

#: Identifier map usable with regular-expression parsing over the office's
#: single-status role sets (the statuses are siblings, so mixed role sets
#: such as ``{PERSON, VISA_C, ABROAD}`` exist too -- ``enumerate_role_sets``
#: lists all of them).
SYMBOLS = {
    "0": EMPTY_ROLE_SET,
    "[P]": ROLE_PERSON,
    "[V]": ROLE_VISA_C,
    "[A]": ROLE_ABROAD,
    "[E]": ROLE_ELIGIBLE,
    "[I]": ROLE_IMMIGRANT,
}


def transactions() -> TransactionSchema:
    """The office's transactions, each guarded by the ``Status`` attribute."""
    d = schema()
    passport, visa = Variable("passport"), Variable("visa")
    year, card = Variable("year"), Variable("card")
    enter = Transaction(
        "enter_with_visa_c",
        [
            Create(PERSON, Condition.of(Passport=passport, Status=STATUS_VISA)),
            Specialize(
                PERSON,
                VISA_C,
                Condition.of(Passport=passport, Status=STATUS_VISA),
                Condition.of(VisaNumber=visa),
            ),
        ],
    )
    depart = Transaction(
        "record_departure",
        [
            Generalize(VISA_C, Condition.of(Passport=passport, Status=STATUS_VISA)),
            Specialize(
                PERSON,
                ABROAD,
                Condition.of(Passport=passport, Status=STATUS_VISA),
                Condition.of(DepartureYear=year),
            ),
            Modify(
                PERSON,
                Condition.of(Passport=passport, Status=STATUS_VISA),
                Condition.of(Status=STATUS_ABROAD),
            ),
        ],
    )
    come_back = Transaction(
        "record_return",
        [
            Generalize(ABROAD, Condition.of(Passport=passport, Status=STATUS_ABROAD)),
            Specialize(
                PERSON,
                ELIGIBLE,
                Condition.of(Passport=passport, Status=STATUS_ABROAD),
                Condition.of(ReturnYear=year),
            ),
            Modify(
                PERSON,
                Condition.of(Passport=passport, Status=STATUS_ABROAD),
                Condition.of(Status=STATUS_ELIGIBLE),
            ),
        ],
    )
    grant = Transaction(
        "grant_immigrant_status",
        [
            Generalize(ELIGIBLE, Condition.of(Passport=passport, Status=STATUS_ELIGIBLE)),
            Specialize(
                PERSON,
                IMMIGRANT,
                Condition.of(Passport=passport, Status=STATUS_ELIGIBLE),
                Condition.of(GreenCard=card),
            ),
            Modify(
                PERSON,
                Condition.of(Passport=passport, Status=STATUS_ELIGIBLE),
                Condition.of(Status=STATUS_IMMIGRANT),
            ),
        ],
    )
    close_file = Transaction("close_file", [Delete(PERSON, Condition.of(Passport=passport))])
    return TransactionSchema(d, [enter, depart, come_back, grant, close_file])


def _precedence(grant_predecessors: Tuple[str, ...]) -> set:
    tx_names = transactions().names()
    edges = set()
    for before in tx_names:
        for after in tx_names:
            if after == "grant_immigrant_status" and before not in grant_predecessors:
                continue
            edges.add((before, after))
    return edges


def inflow_schema() -> InflowSchema:
    """The lawful ordering: granting immigrant status follows recording a return."""
    return InflowSchema(transactions(), _precedence(("record_return",)))


def corrupt_inflow_schema() -> InflowSchema:
    """A broken ordering: granting may only follow registering a new arrival."""
    return InflowSchema(transactions(), _precedence(("enter_with_visa_c",)))


def script_schema() -> ScriptSchema:
    """The lawful ordering under per-object (script) semantics."""
    return ScriptSchema(transactions(), _precedence(("record_return",)))


def corrupt_script_schema() -> ScriptSchema:
    """The broken ordering under script semantics: the upgrade becomes impossible."""
    return ScriptSchema(transactions(), _precedence(("enter_with_visa_c",)))


def status_order_inventory() -> MigrationInventory:
    """The office's lawful status order as a dynamic constraint.

    ``Init(∅* [V]* [A]* [E]* [I]* ∅*)`` -- a person's statuses are traversed
    in the mandated order, each in one contiguous stretch.  Built over the
    schema's full role-set alphabet so it aligns with the MCL compilation.
    """
    alphabet = enumerate_role_sets(schema())
    expression = rx.parse_regex("0* [V]* [A]* [E]* [I]* 0*", SYMBOLS)
    return MigrationInventory.from_regex(expression, alphabet=alphabet, prefix_close=True)


def no_visa_after_immigrant_inventory() -> MigrationInventory:
    """"Once an immigrant, never a type-C visa holder again."

    Well-formed patterns (Definition 3.2) with no ``[V]`` occurrence after a
    ``[I]`` occurrence: ``(∅* Ω+^* ∅*) ∩ complement(Σ* [I] Σ* [V] Σ*)``,
    with the complement taken over the schema's full role-set alphabet --
    exactly what the MCL constraint
    ``(family all) and (never [VISA_C_HOLDER] after [IMMIGRANT])`` denotes.
    """
    d = schema()
    alphabet = enumerate_role_sets(d)
    any_star = rx.Star(rx.union_of(rx.Symbol(role_set) for role_set in alphabet))
    forbidden = rx.concat_of(
        [any_star, rx.Symbol(ROLE_IMMIGRANT), any_star, rx.Symbol(ROLE_VISA_C), any_star]
    )
    allowed = operations.complement(forbidden.to_nfa(alphabet), alphabet)
    universe = MigrationInventory.universe(d)
    return MigrationInventory(operations.intersection(universe.automaton, allowed), alphabet)


# --------------------------------------------------------------------------- #
# MCL restatement of the dynamic constraints (the hand-built inventories
# above are the equivalence oracle).
# --------------------------------------------------------------------------- #
MCL_SOURCE = """\
# Dynamic constraints of the immigration office (Example 5.1).

# Statuses are traversed in the mandated order.
constraint status_order =
    init (empty* [VISA_C_HOLDER]* [ABROAD]* [ELIGIBLE_RETURNEE]* [IMMIGRANT]* empty*)

# Once an immigrant, never a type-C visa holder again.
constraint no_visa_after_immigrant =
    (family all) and (never [VISA_C_HOLDER] after [IMMIGRANT])
"""

#: constraint name -> factory of the hand-built oracle inventory.
MCL_ORACLES = {
    "status_order": status_order_inventory,
    "no_visa_after_immigrant": no_visa_after_immigrant_inventory,
}


def mcl_constraints():
    """The MCL constraints compiled against this workload's schema."""
    from repro.spec import compile_mcl

    return compile_mcl(MCL_SOURCE, schema(), filename="immigration.mcl")


def visa_holder_assertion() -> Assertion:
    """"The person currently holds a type-C visa"."""
    return Assertion.over(VISA_C, Status=STATUS_VISA)


def immigrant_assertion() -> Assertion:
    """"The person is an immigrant"."""
    return Assertion.over(IMMIGRANT, Status=STATUS_IMMIGRANT)


__all__ = [
    "PERSON",
    "VISA_C",
    "ABROAD",
    "ELIGIBLE",
    "IMMIGRANT",
    "STATUS_VISA",
    "STATUS_ABROAD",
    "STATUS_ELIGIBLE",
    "STATUS_IMMIGRANT",
    "ROLE_PERSON",
    "ROLE_VISA_C",
    "ROLE_ABROAD",
    "ROLE_ELIGIBLE",
    "ROLE_IMMIGRANT",
    "SYMBOLS",
    "schema",
    "transactions",
    "status_order_inventory",
    "no_visa_after_immigrant_inventory",
    "MCL_SOURCE",
    "MCL_ORACLES",
    "mcl_constraints",
    "inflow_schema",
    "corrupt_inflow_schema",
    "script_schema",
    "corrupt_script_schema",
    "visa_holder_assertion",
    "immigrant_assertion",
]
