"""Unit tests for migration inventories (Definition 3.3, Examples 3.2/3.3)."""


from repro.core.inventory import MigrationInventory
from repro.core.patterns import MigrationPattern
from repro.core.rolesets import EMPTY_ROLE_SET
from repro.formal.regex import parse_regex
from repro.workloads import university


class TestConstruction:
    def test_from_text_and_membership(self):
        inventory = university.life_cycle_inventory()
        assert inventory.contains([university.ROLE_S, university.ROLE_G, university.ROLE_E])
        assert inventory.contains([])
        assert inventory.contains([EMPTY_ROLE_SET, university.ROLE_P])
        assert not inventory.contains([university.ROLE_E, university.ROLE_S])
        assert [university.ROLE_P] in inventory  # __contains__

    def test_from_patterns(self):
        inventory = MigrationInventory.from_patterns([[university.ROLE_S, university.ROLE_G]])
        assert inventory.contains([university.ROLE_S])  # prefixes are closed in
        assert not inventory.contains([university.ROLE_G])

    def test_universe(self):
        universe = MigrationInventory.universe(university.schema())
        assert universe.contains([EMPTY_ROLE_SET, university.ROLE_G, EMPTY_ROLE_SET])
        assert not universe.contains([university.ROLE_G, EMPTY_ROLE_SET, university.ROLE_S])

    def test_alphabet_always_contains_empty(self):
        inventory = MigrationInventory.from_regex(parse_regex("[S]", university.SYMBOLS))
        assert EMPTY_ROLE_SET in inventory.alphabet


class TestLanguageQueries:
    def test_prefix_closedness(self):
        closed = university.life_cycle_inventory()
        assert closed.is_prefix_closed()
        not_closed = MigrationInventory.from_text("[S][G]", university.SYMBOLS)
        assert not not_closed.is_prefix_closed()
        assert not_closed.prefix_closure().is_prefix_closed()

    def test_well_formedness(self):
        assert university.life_cycle_inventory().is_well_formed(university.schema())
        bad_shape = MigrationInventory.from_text("[S] 0 [G]", university.SYMBOLS, prefix_close=True)
        assert not bad_shape.is_well_formed()

    def test_sample_and_emptiness(self):
        inventory = university.life_cycle_inventory()
        sample = inventory.sample(max_length=3, limit=5)
        assert len(sample) == 5
        assert all(isinstance(p, MigrationPattern) for p in sample)
        assert not inventory.is_empty()

    def test_comparisons_and_counterexample(self):
        big = university.expected_families()["all"]
        small = university.expected_families()["lazy"]
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        assert not big.equals(small)
        witness = big.counterexample_against(small)
        assert witness is not None and big.contains(witness) and not small.contains(witness)
        assert small.counterexample_against(big) is None


class TestOperations:
    def test_union_intersection_concat(self):
        s_only = MigrationInventory.from_text("[S]", university.SYMBOLS)
        g_only = MigrationInventory.from_text("[G]", university.SYMBOLS)
        union = s_only.union(g_only)
        assert union.contains([university.ROLE_S]) and union.contains([university.ROLE_G])
        assert s_only.intersection(g_only).is_empty()
        assert s_only.concat(g_only).contains([university.ROLE_S, university.ROLE_G])

    def test_left_quotient(self):
        word = MigrationInventory.from_text("[S][G][E]", university.SYMBOLS)
        prefix = MigrationInventory.from_text("[S]", university.SYMBOLS)
        quotient = word.left_quotient_by(prefix)
        assert quotient.contains([university.ROLE_G, university.ROLE_E])
        assert not quotient.contains([university.ROLE_S, university.ROLE_G, university.ROLE_E])

    def test_remove_repeats_and_empty_initial(self):
        noisy = MigrationInventory.from_text("0 0 [S] [S] [G]", university.SYMBOLS)
        assert noisy.remove_repeats().contains([EMPTY_ROLE_SET, university.ROLE_S, university.ROLE_G])
        assert noisy.remove_empty_initial().contains(
            [university.ROLE_S, university.ROLE_S, university.ROLE_G]
        )

    def test_to_regex_round_trip(self):
        inventory = MigrationInventory.from_text("[S]([G][S])*", university.SYMBOLS)
        back = MigrationInventory.from_regex(inventory.to_regex(), alphabet=inventory.alphabet)
        assert back.equals(inventory)
