"""The streaming history-checker engine.

:class:`HistoryCheckerEngine` is the scale entry point of the package: it
checks large batches of object histories -- and unbounded event streams --
against named migration specifications.  Specs are registered once as
automata, inventories, compiled MCL constraints or MCL source text
(:mod:`repro.spec`), compiled on demand into table runners
(:mod:`repro.engine.compiler`) behind an LRU cache
(:mod:`repro.engine.cache`).

Since the columnar pipeline (:mod:`repro.engine.batch`) the engine's native
interchange format is *encoded columns*: every event batch and history set
is encoded **once** against the engine's shared
:class:`repro.formal.alphabet.RoleSetAlphabet`, all registered specs are
fused into one product kernel advanced in a single pass per batch, and
process-pool shards ship compact column bytes plus ``(name, generation)``
spec references resolved through a worker-local cache -- never pickled
frozensets.

Typical use::

    engine = HistoryCheckerEngine()
    engine.add_spec("checking", banking.checking_role_inventory())
    verdicts = engine.check_batch("checking", histories)      # batch
    by_spec = engine.check_batch_all(histories)               # fused batch

    stream = engine.open_stream(["checking"])                 # streaming
    stream.feed_events(events)                                # (obj, role-set) pairs
    stream.feed_events(engine.encode_events(more_events))     # pre-encoded
    stream.verdicts("checking")
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.engine.batch import (
    PRODUCT_STATE_CAP,
    ColumnarHistorySet,
    EncodedBatch,
    FusedKernel,
    ObjectInterner,
    check_columnar_shard,
    make_shard_task,
)
from repro.engine.cache import SpecCache
from repro.engine.compiler import CompiledSpec, compile_spec
from repro.engine.executor import SerialExecutor, shard_bounds
from repro.formal.alphabet import RoleSetAlphabet
from repro.formal.nfa import NFA

Symbol = Hashable
ObjectId = Hashable
Event = Tuple[ObjectId, Symbol]

#: Process-unique engine tokens; part of every kernel key so two engines
#: sharing one executor can never be served each other's worker-side
#: kernels (spec *names* alone are not globally unique).
_ENGINE_TOKENS = count()


def _as_automaton(spec) -> NFA:
    """Accept an NFA, a DFA, or anything exposing ``.automaton`` (inventories)."""
    if isinstance(spec, NFA):
        return spec
    automaton = getattr(spec, "automaton", None)
    if isinstance(automaton, NFA):
        return automaton
    to_nfa = getattr(spec, "to_nfa", None)
    if callable(to_nfa):
        return to_nfa()
    raise TypeError(f"cannot interpret {type(spec).__name__} as a specification automaton")


class HistoryCheckerEngine:
    """Compile-once, encode-once, check-many verification of object histories.

    Parameters
    ----------
    executor:
        Shard executor for batch checking; defaults to
        :class:`repro.engine.executor.SerialExecutor`.
    cache_size:
        Capacity of the compiled-spec LRU cache.
    batch_size:
        Histories per shard in :meth:`check_batch` / :meth:`check_batch_all`.
    product_cap:
        Product states per fused-kernel group before specs spill into a new
        group (:data:`repro.engine.batch.PRODUCT_STATE_CAP`).
    """

    def __init__(
        self,
        executor=None,
        cache_size: int = 64,
        batch_size: int = 2048,
        product_cap: int = PRODUCT_STATE_CAP,
    ) -> None:
        self._executor = executor if executor is not None else SerialExecutor()
        self._cache = SpecCache(cache_size)
        self._batch_size = batch_size
        self._product_cap = product_cap
        self._sources: Dict[str, NFA] = {}
        self._generations: Dict[str, int] = {}
        #: The engine-level shared alphabet every batch is encoded against;
        #: append-only, so spec remap arrays and kernels only ever *extend*.
        self._alphabet = RoleSetAlphabet()
        self._kernels = SpecCache(16)
        self._token = next(_ENGINE_TOKENS)

    # ------------------------------------------------------------------ #
    # Spec registry
    # ------------------------------------------------------------------ #
    def add_spec(self, name: str, spec, schema=None) -> None:
        """Register (or replace) a named specification.

        ``spec`` may be an automaton, an inventory, a compiled MCL
        constraint -- or **MCL source text** (a string), in which case
        ``schema`` must be the :class:`repro.model.schema.DatabaseSchema`
        the constraint file is written against; the source's constraint
        named ``name`` is registered (or its only constraint, when it
        defines exactly one).

        Re-registering an existing name bumps the spec's *generation*: the
        stale compiled table is evicted from the cache (the cache key is
        ``(name, generation)``, so a stale entry can never be served even
        across races), and open streams reset their cursors for that spec
        on the next touch -- integer cursor states minted against the old
        table are never interpreted against the new one.
        """
        if isinstance(spec, str):
            automaton = self._compile_mcl_source(name, spec, schema)
        else:
            automaton = _as_automaton(spec)
        generation = self._generations.get(name, 0) + 1
        self._cache.invalidate((name, generation - 1))
        self._sources[name] = automaton
        self._generations[name] = generation

    @staticmethod
    def _compile_mcl_source(name: str, text: str, schema) -> NFA:
        from repro.spec import compile_constraint

        if schema is None:
            raise TypeError(
                "registering MCL source text needs the database schema it is written "
                "against: add_spec(name, text, schema=...)"
            )
        return compile_constraint(text, schema, name=name, fallback_to_single=True).automaton

    def spec_names(self) -> Tuple[str, ...]:
        """Every registered spec name, in registration order."""
        return tuple(self._sources)

    def generation(self, name: str) -> int:
        """How many times ``name`` has been (re-)registered (0 when unknown)."""
        return self._generations.get(name, 0)

    @property
    def alphabet(self) -> RoleSetAlphabet:
        """The shared role-set alphabet all columnar encoding runs against."""
        return self._alphabet

    def compiled(self, name: str) -> CompiledSpec:
        """The table-compiled form of one spec (cached, recompiled on eviction).

        The spec's remap array is kept extended to the shared alphabet's
        current version, so a cached table can always run encoded columns.
        """
        source = self._sources.get(name)
        if source is None:
            raise KeyError(f"unknown specification {name!r}; registered: {sorted(self._sources)}")
        key = (name, self._generations[name])
        spec = self._cache.get_or_compile(key, lambda: compile_spec(source, self._alphabet))
        spec.ensure_remap(self._alphabet)
        return spec

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters of the spec-compilation cache."""
        return self._cache.stats()

    # ------------------------------------------------------------------ #
    # Columnar encoding
    # ------------------------------------------------------------------ #
    def encode_events(
        self, events: Iterable[Event], objects: Optional[ObjectInterner] = None
    ) -> EncodedBatch:
        """Encode an interleaved event batch once against the shared alphabet."""
        return EncodedBatch.from_events(events, self._alphabet, objects)

    def encode_histories(self, histories: Sequence[Sequence[Symbol]]) -> ColumnarHistorySet:
        """Encode whole histories once; reusable across every registered spec."""
        return ColumnarHistorySet.from_histories(histories, self._alphabet)

    def _kernel_for(self, names: Sequence[str]) -> FusedKernel:
        """The fused kernel over ``names`` (cached by generations and alphabet)."""
        specs = [(name, self.compiled(name)) for name in names]
        key = (
            self._token,
            tuple((name, self._generations[name]) for name in names),
            len(self._alphabet),
            self._product_cap,
        )
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = FusedKernel(specs, len(self._alphabet), self._product_cap, key=key)
            self._kernels.put(key, kernel)
        return kernel

    # ------------------------------------------------------------------ #
    # Batch checking
    # ------------------------------------------------------------------ #
    def check_batch(
        self,
        name: str,
        histories: Sequence[Sequence[Symbol]],
        executor=None,
    ) -> List[bool]:
        """The membership verdict of every history, in input order."""
        return self.check_batch_all(histories, [name], executor=executor)[name]

    def check_batch_all(
        self,
        histories,
        names: Optional[Iterable[str]] = None,
        executor=None,
    ) -> Dict[str, List[bool]]:
        """Batch verdicts for several specs in one encoded pass.

        ``histories`` may be raw symbol sequences or an already encoded
        :class:`repro.engine.batch.ColumnarHistorySet`.  Histories are
        encoded once, every selected spec is fused into one product kernel,
        and -- with a parallel executor -- shards ship as compact column
        bytes plus ``(name, generation)`` spec references resolved through a
        worker-local compile cache, not pickled tables and frozensets.
        """
        selected = tuple(names) if names is not None else self.spec_names()
        if not selected:
            return {}
        if isinstance(histories, ColumnarHistorySet):
            history_set = histories
            if (
                history_set.alphabet is not None and history_set.alphabet is not self._alphabet
            ) or history_set.max_code >= len(self._alphabet):
                raise ValueError(
                    "the encoded history set was built against a different alphabet than "
                    "this engine's; encode with engine.encode_histories"
                )
        else:
            history_set = ColumnarHistorySet.from_histories(histories, self._alphabet)
        kernel = self._kernel_for(selected)
        backend = executor if executor is not None else self._executor
        if isinstance(backend, SerialExecutor) or len(history_set) <= self._batch_size:
            verdicts = kernel.check_histories(history_set.code_list, history_set.lengths())
            return {name: verdicts[name] for name in selected}
        specs = [(name, self.compiled(name)) for name in selected]
        tasks = [
            make_shard_task(kernel, specs, history_set.shard_payload(start, stop))
            for start, stop in shard_bounds(len(history_set), self._batch_size)
        ]
        results = backend.run(check_columnar_shard, tasks)
        stitched: Dict[str, List[bool]] = {name: [] for name in selected}
        for piece in results:
            for name in selected:
                stitched[name].extend(piece[name])
        return stitched

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    def open_stream(self, names: Optional[Iterable[str]] = None) -> "StreamChecker":
        """A streaming session tracking every object against the given specs."""
        selected = tuple(names) if names is not None else self.spec_names()
        for name in selected:
            if name not in self._sources:
                raise KeyError(f"unknown specification {name!r}")
        return StreamChecker(self, selected)


class StreamChecker:
    """Incremental checking of an interleaved multi-object event stream.

    The session keeps one dense state column per fused-kernel group: object
    ids are interned to dense integers (:class:`repro.engine.batch.
    ObjectInterner`) and each object's entry holds a direct reference to its
    current product-state row, so :meth:`feed_events` advances *every* spec
    with a single subscript chain per event.  Batches may arrive raw (they
    are encoded once against the engine's shared alphabet) or already
    encoded (:class:`repro.engine.batch.EncodedBatch`, e.g. from the
    workload generators).

    Specs are re-resolved through the engine's LRU cache on every batch, so
    compiled tables may be evicted and deterministically recompiled
    mid-stream without disturbing the session.  Re-registering a spec
    (``add_spec`` under an existing name) bumps its generation; on the next
    touch the session rebuilds its kernel, restarts that spec's histories
    from the new automaton's initial state, and keeps every other spec's
    progress -- stale states are never interpreted against a different
    table.
    """

    __slots__ = (
        "_engine",
        "_names",
        "_generations",
        "_interner",
        "_columns",
        "_kernel",
        "_seen",
        "_universe",
        "events_seen",
    )

    def __init__(self, engine: HistoryCheckerEngine, names: Tuple[str, ...]) -> None:
        self._engine = engine
        self._names = names
        self._generations: Dict[str, int] = {name: engine.generation(name) for name in names}
        self._interner = ObjectInterner()
        self._columns: List[list] = []
        self._kernel: Optional[FusedKernel] = None
        #: Per spec, the dense ids seen since that spec's last reset --
        #: ``None`` meaning "every object fed so far" (the common case,
        #: kept implicit so the hot path never builds per-batch id sets).
        self._seen: Dict[str, Optional[Dict[int, None]]] = {name: None for name in names}
        #: Dense ids below this bound have produced at least one fed event.
        self._universe = 0
        self.events_seen = 0

    @property
    def spec_names(self) -> Tuple[str, ...]:
        """The specs this session checks against."""
        return self._names

    @property
    def object_interner(self) -> ObjectInterner:
        """The id space of this session (share it to pre-encode batches)."""
        return self._interner

    def _resolve_kernel(self) -> FusedKernel:
        """The current fused kernel, translating states across rebuilds.

        Every call resolves each spec through the engine's compile cache
        (evictions and recompilations stay visible in ``cache_stats``).  A
        changed generation resets that spec's histories and seen set; a
        changed kernel (re-registration, alphabet growth, cache churn)
        carries every other spec's per-object states over by translation.
        """
        engine = self._engine
        reset = []
        for name in self._names:
            generation = engine.generation(name)
            if generation != self._generations[name]:
                self._generations[name] = generation
                reset.append(name)
        kernel = engine._kernel_for(self._names)
        if kernel is not self._kernel:
            if self._kernel is None:
                self._columns = kernel.new_columns(len(self._interner))
            else:
                self._columns = kernel.translate_columns(self._kernel, self._columns, reset)
            self._kernel = kernel
        for name in reset:
            self._seen[name] = {}
        kernel.grow_columns(self._columns, len(self._interner))
        return kernel

    def _adopt(self, batch: EncodedBatch) -> None:
        """Validate a pre-encoded batch and adopt its id space if fresh."""
        engine_alphabet = self._engine.alphabet
        if batch.alphabet is not None and batch.alphabet is not engine_alphabet:
            raise ValueError(
                "the encoded batch was built against a different alphabet than this "
                "engine's; encode with engine.encode_events (or the engine's .alphabet)"
            )
        if batch.max_code >= len(engine_alphabet):
            raise ValueError(
                "the encoded batch carries symbol codes beyond this engine's alphabet"
            )
        if batch.objects is not self._interner:
            if len(self._interner) == 0:
                self._interner = batch.objects
            else:
                raise ValueError(
                    "the encoded batch uses a different object-id space than this "
                    "stream; encode against stream.object_interner"
                )

    def feed(self, object_id: ObjectId, symbol: Symbol) -> None:
        """Consume a single event."""
        self.feed_events(((object_id, symbol),))

    def feed_events(self, events) -> int:
        """Consume a batch of events; returns the batch's event count.

        ``events`` is an iterable of ``(object_id, symbol)`` pairs or an
        :class:`repro.engine.batch.EncodedBatch`.  The batch is encoded (at
        most) once and every spec of the session advances over the encoded
        columns in one fused pass.  Events are counted once per batch --
        also when the session checks zero specs.
        """
        if isinstance(events, EncodedBatch):
            self._adopt(events)
            batch = events
        else:
            batch = EncodedBatch.from_events(events, self._engine.alphabet, self._interner)
        count = len(batch)
        if not self._names:
            self.events_seen += count
            return count
        # _resolve_kernel grows the columns to the interner's current size
        # (the encode above already interned any fresh objects).
        kernel = self._resolve_kernel()
        if count:
            kernel.advance_all(self._columns, batch)
            partial = [seen for seen in self._seen.values() if seen is not None]
            if partial:
                batch_objects = dict.fromkeys(batch.id_list)
                for seen in partial:
                    seen.update(batch_objects)
            self._universe = max(self._universe, batch.max_id + 1)
        self.events_seen += count
        return count

    def _seen_codes(self, name: str) -> Iterable[int]:
        """The dense ids tracked for one spec (``range`` when never reset)."""
        seen = self._seen[name]
        return range(self._universe) if seen is None else seen

    def objects(self, name: Optional[str] = None) -> Tuple[ObjectId, ...]:
        """The objects observed so far (for one spec, or the first)."""
        selected = name if name is not None else self._names[0]
        return tuple(map(self._interner.object, self._seen_codes(selected)))

    def verdict(self, name: str, object_id: ObjectId) -> bool:
        """Whether one object's history so far satisfies one spec."""
        kernel = self._resolve_kernel()
        group_index, j = kernel.locate[name]
        group = kernel.groups[group_index]
        column = self._columns[group_index]
        dense = self._interner.code_of(object_id)
        if 0 <= dense < len(column):
            state_index = column[dense][-1]
        else:
            state_index = group.root[-1]
        return group.accepting[j][state_index] == 1

    def verdicts(self, name: str) -> Dict[ObjectId, bool]:
        """Per-object verdicts for one spec."""
        kernel = self._resolve_kernel()
        dense = kernel.verdicts_of(name, self._columns, self._seen_codes(name))
        decode = self._interner.object
        return {decode(code): verdict for code, verdict in dense.items()}

    def all_verdicts(self) -> Dict[str, Dict[ObjectId, bool]]:
        """Per-object verdicts for every spec of the session."""
        return {name: self.verdicts(name) for name in self._names}


__all__ = ["HistoryCheckerEngine", "StreamChecker"]
