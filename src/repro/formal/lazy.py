"""Lazy (on-the-fly) product constructions for the decision procedures.

The eager pipeline in :mod:`repro.formal.operations` decides containment
``L(A) ⊆ L(B)`` by *materializing* ``A ∩ complement(B)`` -- two full subset
constructions, a complete product automaton (sink states included) and an
NFA round-trip -- and only then asks whether the result is empty.  For the
decision procedures of Corollary 3.3 all of that work is wasted whenever a
witness exists close to the start state, and most of it is wasted even when
the verdict is positive, because the complete product contains sink pairs
and left-dead pairs that can never influence the answer.

This module explores the product *state space* instead of building the
product *automaton*: pairs of subset states are generated on demand in a
breadth-first search over a shared interned alphabet
(:class:`repro.formal.alphabet.RoleSetAlphabet`), the search stops at the
first decisive pair, and pairs from which no verdict can ever arise (a dead
left component) are pruned.  Witnesses come out of the parent pointers of
the BFS, so the shortest counterexample is produced as a by-product rather
than by enumerating the words of a difference automaton.

Every query returns a :class:`LazyOutcome` carrying the verdict, the
witness word (restored to original symbols) and the number of product
states explored; the benchmarks assert that the explored count stays below
the eager product size on the workload specifications.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.formal.alphabet import RoleSetAlphabet, intern_nfa
from repro.formal.nfa import NFA

Symbol = Hashable
State = Hashable
Word = Tuple[Symbol, ...]


@dataclass(frozen=True)
class LazyOutcome:
    """The result of one lazy decision query.

    ``holds`` is the verdict of the query (containment holds, the
    intersection is empty, the languages are equivalent).  When the verdict
    is negative, ``witness`` is a shortest word demonstrating it -- a member
    of ``L(left) - L(right)`` for containment, of ``L(left) ∩ L(right)``
    for intersection non-emptiness.  ``explored_states`` counts the product
    states expanded before the search stopped.
    """

    holds: bool
    witness: Optional[Word]
    explored_states: int


@dataclass(frozen=True)
class CompletionOutcome:
    """The result of one completion search (:func:`shortest_completion`).

    ``completion`` is a shortest word ``w`` such that ``prefix + w`` is
    accepted -- ``None`` when the prefix is doomed (no continuation of it
    lies in the language at all).  ``explored_states`` counts the subset
    states expanded by the search.
    """

    completion: Optional[Word]
    explored_states: int


def _coded_pair(left: NFA, right: NFA) -> Tuple[NFA, NFA, RoleSetAlphabet, Tuple[int, ...]]:
    """Align the alphabets and intern both operands against one interner."""
    alphabet = left.alphabet | right.alphabet
    interner = RoleSetAlphabet()
    left_coded = intern_nfa(left.with_alphabet(alphabet), interner)
    right_coded = intern_nfa(right.with_alphabet(alphabet), interner)
    symbols = tuple(sorted(left_coded.alphabet))
    return left_coded, right_coded, interner, symbols


def _restore(interner: RoleSetAlphabet, word: Optional[Tuple[int, ...]]) -> Optional[Word]:
    return None if word is None else interner.restore_word(word)


def _search(
    left: NFA,
    right: NFA,
    symbols: Tuple[int, ...],
    decisive,
    prune,
    start=None,
) -> Tuple[Optional[Tuple[int, ...]], int]:
    """Breadth-first search over reachable product pairs.

    ``decisive(left_set, right_set)`` returns ``True`` on pairs that settle
    the query negatively; ``prune(left_set, right_set)`` marks pairs whose
    whole cone is irrelevant.  Returns ``(witness, explored)`` where the
    witness is a shortest word of codes reaching a decisive pair (``None``
    when no decisive pair is reachable).

    Pairs are expanded in FIFO order and their successors pushed in
    canonical symbol order, so the first decisive pair found corresponds to
    the canonically least among the shortest witnesses -- the same word the
    eager pipeline's :meth:`repro.formal.nfa.NFA.enumerate_words` would
    report first.

    ``start`` overrides the initial pair -- the completion search enters the
    product mid-word, at the subset pair a consumed prefix leads to.
    """
    if start is None:
        start = (
            left.epsilon_closure(left.initial_states),
            right.epsilon_closure(right.initial_states),
        )
    Pair = Tuple[FrozenSet[State], FrozenSet[State]]
    parents: Dict[Pair, Optional[Tuple[Pair, int]]] = {start: None}
    explored = 0

    def path_to(pair: Pair) -> Tuple[int, ...]:
        word: List[int] = []
        cursor: Optional[Tuple[Pair, int]] = parents[pair]
        while cursor is not None:
            ancestor, code = cursor
            word.append(code)
            cursor = parents[ancestor]
        word.reverse()
        return tuple(word)

    if prune(*start):
        return None, explored
    if decisive(*start):
        return (), explored

    queue = deque([start])
    while queue:
        pair = queue.popleft()
        left_set, right_set = pair
        explored += 1
        for code in symbols:
            target = (left.step(left_set, code), right.step(right_set, code))
            if target in parents or prune(*target):
                continue
            parents[target] = (pair, code)
            if decisive(*target):
                return path_to(target), explored
            queue.append(target)
    return None, explored


def containment(left: NFA, right: NFA) -> LazyOutcome:
    """Decide ``L(left) ⊆ L(right)`` by lazy product exploration.

    A counterexample is a reachable pair whose left subset accepts while
    its right subset does not; pairs with a dead left subset are pruned
    because no extension of their word lies in ``L(left)`` at all.
    """
    left_coded, right_coded, interner, symbols = _coded_pair(left, right)
    left_accepting = left_coded.accepting_states
    right_accepting = right_coded.accepting_states

    def decisive(left_set: FrozenSet[State], right_set: FrozenSet[State]) -> bool:
        return bool(left_set & left_accepting) and not (right_set & right_accepting)

    def prune(left_set: FrozenSet[State], right_set: FrozenSet[State]) -> bool:
        return not left_set

    witness, explored = _search(left_coded, right_coded, symbols, decisive, prune)
    return LazyOutcome(witness is None, _restore(interner, witness), explored)


def intersection_emptiness(left: NFA, right: NFA) -> LazyOutcome:
    """Decide ``L(left) ∩ L(right) = ∅`` by lazy product exploration.

    A witness is a reachable pair in which both subsets accept; pairs with
    either subset dead are pruned (the intersection needs both sides
    alive).
    """
    left_coded, right_coded, interner, symbols = _coded_pair(left, right)
    left_accepting = left_coded.accepting_states
    right_accepting = right_coded.accepting_states

    def decisive(left_set: FrozenSet[State], right_set: FrozenSet[State]) -> bool:
        return bool(left_set & left_accepting) and bool(right_set & right_accepting)

    def prune(left_set: FrozenSet[State], right_set: FrozenSet[State]) -> bool:
        return not left_set or not right_set

    witness, explored = _search(left_coded, right_coded, symbols, decisive, prune)
    return LazyOutcome(witness is None, _restore(interner, witness), explored)


def equivalence(left: NFA, right: NFA) -> LazyOutcome:
    """Decide ``L(left) = L(right)`` as two lazy containments.

    The witness, if any, is a shortest word in the symmetric difference.
    ``explored_states`` counts the searches actually run: only the forward
    direction when it already refutes equivalence, both otherwise.
    """
    forward = containment(left, right)
    if not forward.holds:
        return LazyOutcome(False, forward.witness, forward.explored_states)
    backward = containment(right, left)
    explored = forward.explored_states + backward.explored_states
    return LazyOutcome(backward.holds, backward.witness, explored)


def _universe_nfa(alphabet) -> NFA:
    """The one-state automaton accepting every word over ``alphabet``."""
    return NFA(
        {"q0"},
        alphabet,
        {("q0", symbol): {"q0"} for symbol in alphabet},
        {"q0"},
        {"q0"},
    )


def emptiness(automaton: NFA) -> LazyOutcome:
    """Emptiness with a shortest witness word (lazy reachability).

    Single-automaton degenerate case of the product search, provided so
    callers can use one result type for every decision query.
    """
    return intersection_emptiness(automaton, _universe_nfa(automaton.alphabet))


def shortest_completion(automaton: NFA, prefix) -> CompletionOutcome:
    """A shortest word ``w`` such that ``prefix + w ∈ L(automaton)``.

    The engine's violation diagnostics use this to turn "this history is not
    accepted *yet*" into an actionable report: the search enters the lazy
    product at the subset state the prefix leads to and runs the same BFS
    the decision procedures use, so the completion comes back shortest --
    and canonically least among the shortest -- with the explored-state
    count as a by-product.  A prefix containing symbols outside the
    automaton's alphabet, or one that already left every live subset state,
    has no completion (``completion is None``): acceptance has become
    impossible.
    """
    interner = RoleSetAlphabet()
    coded = intern_nfa(automaton, interner)
    symbols = tuple(sorted(coded.alphabet))
    state = coded.epsilon_closure(coded.initial_states)
    for symbol in prefix:
        code = interner.encode(symbol)
        state = coded.step(state, code) if code >= 0 and state else frozenset()
        if not state:
            return CompletionOutcome(None, 0)
    universe = _universe_nfa(symbols)
    accepting = coded.accepting_states

    def decisive(left_set: FrozenSet[State], right_set: FrozenSet[State]) -> bool:
        return bool(left_set & accepting)

    def prune(left_set: FrozenSet[State], right_set: FrozenSet[State]) -> bool:
        return not left_set

    start = (state, universe.epsilon_closure(universe.initial_states))
    witness, explored = _search(coded, universe, symbols, decisive, prune, start=start)
    return CompletionOutcome(_restore(interner, witness), explored)


__all__ = [
    "LazyOutcome",
    "CompletionOutcome",
    "containment",
    "intersection_emptiness",
    "equivalence",
    "emptiness",
    "shortest_completion",
]
