"""Equivalence properties for the persistent instance engine and interned automata.

Two families of properties guard the PR-1 refactor:

* the delta-based persistent engine (:mod:`repro.model.store` +
  :meth:`DatabaseInstance.apply_delta`) agrees with a straightforward
  copy-everything reference implementation of Definition 2.5 on random
  update sequences, and ``diff``/``apply_delta`` round-trip;
* automata whose symbols are interned to integer codes
  (:mod:`repro.formal.alphabet`) accept exactly the same languages as the
  originals, through determinization, minimization and the boolean
  operations.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.rolesets import RoleSet
from repro.formal import decision, operations
from repro.formal.alphabet import (
    RoleSetAlphabet,
    canonical_word_key,
    intern_nfa,
    restore_nfa,
)
from repro.formal.nfa import NFA
from repro.language.semantics import apply_update, transaction_delta
from repro.language.transactions import Transaction
from repro.language.updates import Create, Delete, Generalize, Modify, Specialize
from repro.model.conditions import Condition
from repro.model.instance import DatabaseInstance
from repro.model.schema import DatabaseSchema

# --------------------------------------------------------------------------- #
# A compact two-class schema: Q isa P, A introduced at P, B at Q.
# --------------------------------------------------------------------------- #
SCHEMA = DatabaseSchema(["P", "Q"], [("Q", "P")], {"P": ["A"], "Q": ["B"]})
VALUES = (0, 1, 2)

selections = st.builds(
    lambda pairs: Condition.parse(dict(pairs)),
    st.lists(st.tuples(st.just("A"), st.sampled_from(VALUES)), max_size=1),
)

updates = st.one_of(
    st.builds(lambda v: Create("P", Condition.of(A=v)), st.sampled_from(VALUES)),
    st.builds(lambda s: Delete("P", s), selections),
    st.builds(lambda s, v: Modify("P", s, Condition.of(A=v)), selections, st.sampled_from(VALUES)),
    st.builds(lambda s, v: Specialize("P", "Q", s, Condition.of(B=v)), selections, st.sampled_from(VALUES)),
    st.builds(lambda s: Generalize("Q", s), selections),
)


# --------------------------------------------------------------------------- #
# Reference semantics: the seed-era copy-everything implementation.
# --------------------------------------------------------------------------- #
def _reference_apply(update, instance):
    """Definition 2.5 implemented with full dict copies (the seed semantics)."""
    schema = instance.schema
    extent = {name: set(objects) for name, objects in instance.extent.items()}
    values = dict(instance.values)
    next_object = instance.next_object

    if isinstance(update, Create):
        if not update.values.is_satisfiable():
            return instance
        new_object = next_object
        extent[update.class_name].add(new_object)
        for atom in update.values:
            if atom.is_equality:
                values[(new_object, atom.attribute)] = atom.term
        next_object = new_object.successor()
    elif isinstance(update, (Delete, Generalize)):
        if not update.selection.is_satisfiable():
            return instance
        doomed = instance.satisfying_objects(update.selection, update.class_name)
        affected = schema.descendants(update.class_name)
        for name in affected:
            extent[name] -= doomed
        if isinstance(update, Delete):
            for key in list(values):
                if key[0] in doomed:
                    del values[key]
        else:
            dropped = set()
            for name in affected:
                dropped |= schema.attributes_of(name)
            for key in list(values):
                if key[0] in doomed and key[1] in dropped:
                    del values[key]
    elif isinstance(update, Modify):
        if not update.selection.is_satisfiable() or not update.changes.is_satisfiable():
            return instance
        selected = instance.satisfying_objects(update.selection, update.class_name)
        for obj in selected:
            for attribute in update.changes.referenced_attributes():
                values.pop((obj, attribute), None)
            for atom in update.changes:
                if atom.is_equality:
                    values[(obj, atom.attribute)] = atom.term
    elif isinstance(update, Specialize):
        if not update.selection.is_satisfiable() or not update.new_values.is_satisfiable():
            return instance
        candidates = instance.satisfying_objects(update.selection, update.parent_class)
        migrating = candidates - instance.objects_in(update.child_class)
        if not migrating:
            return instance
        for name in schema.ancestors(update.child_class):
            extent[name] |= migrating
        for obj in migrating:
            for attribute in update.new_values.referenced_attributes():
                values.pop((obj, attribute), None)
            for atom in update.new_values:
                if atom.is_equality:
                    values[(obj, atom.attribute)] = atom.term
    else:  # pragma: no cover - exhaustive above
        raise AssertionError(update)

    return DatabaseInstance(schema, extent, values, next_object, validate=False)


@settings(max_examples=200, deadline=None)
@given(st.lists(updates, max_size=12))
def test_persistent_engine_agrees_with_reference_semantics(sequence):
    fast = DatabaseInstance.empty(SCHEMA)
    reference = DatabaseInstance.empty(SCHEMA)
    for update in sequence:
        fast = apply_update(update, fast)
        reference = _reference_apply(update, reference)
        assert fast == reference
        assert dict(fast.values) == dict(reference.values)
        assert fast.extent == reference.extent
        assert fast.next_object == reference.next_object


@settings(max_examples=150, deadline=None)
@given(st.lists(updates, max_size=8), st.lists(updates, max_size=8))
def test_diff_apply_delta_roundtrip(prefix, suffix):
    start = DatabaseInstance.empty(SCHEMA)
    for update in prefix:
        start = apply_update(update, start)
    end = start
    for update in suffix:
        end = apply_update(update, end)
    delta = start.diff(end)
    assert start.apply_delta(delta) == end
    # Identity deltas short-circuit to the very same object.
    assert start.apply_delta(start.diff(start)) is start


@settings(max_examples=100, deadline=None)
@given(st.lists(updates, min_size=1, max_size=6))
def test_transaction_delta_matches_sequential_application(sequence):
    transaction = Transaction("t", sequence)
    start = DatabaseInstance.empty(SCHEMA)
    expected = start
    for update in sequence:
        expected = apply_update(update, expected)
    assert start.apply_delta(transaction_delta(transaction, start)) == expected


# --------------------------------------------------------------------------- #
# Interned automata accept exactly the seed languages.
# --------------------------------------------------------------------------- #
ROLE_SYMBOLS = (RoleSet(), RoleSet({"P"}), RoleSet({"P", "Q"}))

words = st.lists(st.sampled_from(ROLE_SYMBOLS), max_size=4).map(tuple)
word_sets = st.lists(words, min_size=0, max_size=6)


@settings(max_examples=100, deadline=None)
@given(word_sets)
def test_interned_automaton_round_trips_the_language(word_list):
    automaton = NFA.from_words(word_list, alphabet=ROLE_SYMBOLS)
    interner = RoleSetAlphabet()
    coded = intern_nfa(automaton, interner)
    for word in word_list:
        assert coded.accepts(interner.intern_word(word))
    restored = restore_nfa(coded, interner)
    assert decision.are_equivalent(automaton, restored)


@settings(max_examples=75, deadline=None)
@given(word_sets, word_sets)
def test_interned_boolean_operations_match_brute_force(left_words, right_words):
    left = NFA.from_words(left_words, alphabet=ROLE_SYMBOLS)
    right = NFA.from_words(right_words, alphabet=ROLE_SYMBOLS)
    both = operations.intersection(left, right)
    diff = operations.difference(left, right)
    left_set, right_set = set(left_words), set(right_words)
    universe = {w for w in left_set | right_set}
    for word in universe:
        assert both.accepts(word) == (word in left_set and word in right_set)
        assert diff.accepts(word) == (word in left_set and word not in right_set)
    assert set(both.enumerate_words(4)) == left_set & right_set
    assert set(diff.enumerate_words(4)) == left_set - right_set


@settings(max_examples=75, deadline=None)
@given(word_sets)
def test_minimized_dfa_preserves_the_language(word_list):
    automaton = NFA.from_words(word_list, alphabet=ROLE_SYMBOLS)
    minimized = automaton.determinize().minimize()
    assert decision.are_equivalent(automaton, minimized.to_nfa())
    assert {w for w in minimized.to_nfa().enumerate_words(4)} == set(word_list)


@settings(max_examples=50, deadline=None)
@given(word_sets)
def test_canonical_word_key_orders_by_length_then_structure(word_list):
    ordered = sorted(set(word_list), key=canonical_word_key)
    lengths = [len(word) for word in ordered]
    assert lengths == sorted(lengths)
    # The key is total: equal keys imply equal words.
    keys = [canonical_word_key(word) for word in ordered]
    assert len(set(keys)) == len(ordered)
