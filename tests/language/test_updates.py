"""Unit tests for the static well-formedness rules of SL atomic updates (Definition 2.3)."""

import pytest

from repro.language.updates import Create, Delete, Generalize, Modify, Specialize
from repro.model.conditions import Condition
from repro.model.errors import UpdateError
from repro.model.values import Assignment, Variable
from repro.workloads import university

SCHEMA = university.schema()
P, S, E, G = university.PERSON, university.STUDENT, university.EMPLOYEE, university.GRAD_ASSIST


class TestCreate:
    def test_valid(self):
        Create(P, Condition.of(SSN=Variable("s"), Name="n")).validate(SCHEMA)

    def test_requires_isa_root(self):
        with pytest.raises(UpdateError):
            Create(S, Condition.of(Major="CS", FirstEnroll=1)).validate(SCHEMA)

    def test_requires_exactly_the_root_attributes(self):
        with pytest.raises(UpdateError):
            Create(P, Condition.of(SSN="1")).validate(SCHEMA)
        with pytest.raises(UpdateError):
            Create(P, Condition.of(SSN="1", Name="n", Major="CS")).validate(SCHEMA)

    def test_requires_equalities(self):
        with pytest.raises(UpdateError):
            Create(P, Condition.of(Name="n").and_not_equal("SSN", "1")).validate(SCHEMA)

    def test_variables_and_substitution(self):
        update = Create(P, Condition.of(SSN=Variable("s"), Name=Variable("n")))
        assert update.variables() == {Variable("s"), Variable("n")}
        assert not update.is_ground
        ground = update.substituted(Assignment(s="1", n="Ada"))
        assert ground.is_ground
        assert ground.constants() == {"1", "Ada"}


class TestDelete:
    def test_valid(self):
        Delete(P, Condition.of(SSN="1")).validate(SCHEMA)
        Delete(P, Condition()).validate(SCHEMA)

    def test_requires_isa_root(self):
        with pytest.raises(UpdateError):
            Delete(G, Condition()).validate(SCHEMA)

    def test_selection_restricted_to_root_attributes(self):
        with pytest.raises(UpdateError):
            Delete(P, Condition.of(Major="CS")).validate(SCHEMA)


class TestModify:
    def test_valid(self):
        Modify(S, Condition.of(SSN="1"), Condition.of(Major="EE")).validate(SCHEMA)

    def test_changes_must_be_equalities(self):
        with pytest.raises(UpdateError):
            Modify(S, Condition(), Condition().and_not_equal("Major", "CS")).validate(SCHEMA)

    def test_attributes_must_be_defined_on_class(self):
        with pytest.raises(UpdateError):
            Modify(S, Condition.of(Salary=1), Condition.of(Major="CS")).validate(SCHEMA)
        with pytest.raises(UpdateError):
            Modify(S, Condition(), Condition.of(Salary=1)).validate(SCHEMA)

    def test_inherited_attributes_are_allowed(self):
        Modify(G, Condition.of(SSN="1"), Condition.of(Salary=10)).validate(SCHEMA)


class TestGeneralize:
    def test_valid(self):
        Generalize(E, Condition.of(SSN="1")).validate(SCHEMA)

    def test_rejects_isa_root(self):
        with pytest.raises(UpdateError):
            Generalize(P, Condition()).validate(SCHEMA)

    def test_selection_over_inherited_attributes(self):
        Generalize(G, Condition.of(Name="x", PctAppoint=1)).validate(SCHEMA)
        with pytest.raises(UpdateError):
            Generalize(E, Condition.of(Major="CS")).validate(SCHEMA)


class TestSpecialize:
    def test_valid(self):
        Specialize(P, S, Condition.of(SSN="1"), Condition.of(Major="CS", FirstEnroll=1)).validate(SCHEMA)
        Specialize(
            S, G, Condition.of(SSN="1"), Condition.of(PctAppoint=1, Salary=2, WorksIn="d")
        ).validate(SCHEMA)

    def test_requires_immediate_isa_edge(self):
        with pytest.raises(UpdateError):
            Specialize(P, G, Condition(), Condition.of(PctAppoint=1, Salary=2, WorksIn="d", Major="m", FirstEnroll=1)).validate(SCHEMA)

    def test_new_values_must_cover_exactly_the_gap(self):
        with pytest.raises(UpdateError):
            Specialize(P, S, Condition(), Condition.of(Major="CS")).validate(SCHEMA)
        with pytest.raises(UpdateError):
            Specialize(P, S, Condition(), Condition.of(Major="CS", FirstEnroll=1, Name="x")).validate(SCHEMA)

    def test_selection_restricted_to_parent_attributes(self):
        with pytest.raises(UpdateError):
            Specialize(P, S, Condition.of(Major="CS"), Condition.of(Major="CS", FirstEnroll=1)).validate(SCHEMA)

    def test_classes_and_conditions_accessors(self):
        update = Specialize(P, S, Condition.of(SSN="1"), Condition.of(Major="CS", FirstEnroll=1))
        assert update.classes() == (P, S)
        assert len(update.conditions()) == 2
        assert update.operator == "specialize"
