"""Database schemas: classes, the ``isa`` specialization graph, attributes.

Implements Definition 2.1 of the paper: a schema is ``D = (C, isa, A)``
where ``(C, isa)`` is a *specialization graph* -- an acyclic directed graph
in which every pair of weakly connected classes has a common ``isa``-ancestor
(so every weakly-connected component is a rooted DAG, its root being the
unique *isa-root*) -- and ``A`` maps classes to pairwise disjoint attribute
sets.  The attributes *defined on* a class are those of the class and all of
its ancestors (``A*``), modelling inheritance.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.model.errors import SchemaError

ClassName = str
AttributeName = str


class DatabaseSchema:
    """An object-base schema ``D = (C, isa, A)``.

    Parameters
    ----------
    classes:
        The class names ``C``.
    isa:
        Pairs ``(P, Q)`` meaning ``P isa Q`` (``P`` is a subclass of ``Q``);
        edges are directed from subclass to superclass, as in the paper's
        Figure 1 where ``GRAD-ASSIST isa EMPLOYEE``.
    attributes:
        Mapping from class name to the attributes introduced *at* that class
        (``A``); attribute sets must be pairwise disjoint.

    Raises
    ------
    SchemaError
        If the hierarchy is not a specialization graph or the attribute sets
        overlap.
    """

    def __init__(
        self,
        classes: Iterable[ClassName],
        isa: Iterable[Tuple[ClassName, ClassName]],
        attributes: Mapping[ClassName, Iterable[AttributeName]],
    ) -> None:
        self._classes: FrozenSet[ClassName] = frozenset(classes)
        if not self._classes:
            raise SchemaError("a schema needs at least one class")
        self._isa: FrozenSet[Tuple[ClassName, ClassName]] = frozenset(isa)
        for sub, sup in self._isa:
            if sub not in self._classes or sup not in self._classes:
                raise SchemaError(f"isa edge ({sub!r}, {sup!r}) mentions an unknown class")
            if sub == sup:
                raise SchemaError(f"isa edge ({sub!r}, {sup!r}) is a self-loop")
        self._attributes: Dict[ClassName, FrozenSet[AttributeName]] = {
            name: frozenset(attributes.get(name, ())) for name in self._classes
        }
        unknown = set(attributes) - set(self._classes)
        if unknown:
            raise SchemaError(f"attributes declared for unknown classes: {sorted(unknown)!r}")
        self._validate_disjoint_attributes()
        self._parents: Dict[ClassName, FrozenSet[ClassName]] = {
            name: frozenset(sup for sub, sup in self._isa if sub == name) for name in self._classes
        }
        self._children: Dict[ClassName, FrozenSet[ClassName]] = {
            name: frozenset(sub for sub, sup in self._isa if sup == name) for name in self._classes
        }
        self._validate_acyclic()
        self._ancestors: Dict[ClassName, FrozenSet[ClassName]] = {
            name: self._closure(name, self._parents) for name in self._classes
        }
        self._descendants: Dict[ClassName, FrozenSet[ClassName]] = {
            name: self._closure(name, self._children) for name in self._classes
        }
        self._components: Tuple[FrozenSet[ClassName], ...] = self._compute_components()
        self._component_of: Dict[ClassName, FrozenSet[ClassName]] = {}
        for component in self._components:
            for name in component:
                self._component_of[name] = component
        self._validate_specialization_graph()
        # ``A*`` is asked for constantly by selection and validation; the
        # schema is immutable, so precompute it once per class.
        self._all_attributes: Dict[ClassName, FrozenSet[AttributeName]] = {
            name: frozenset().union(*(self._attributes[a] for a in self._ancestors[name]))
            for name in self._classes
        }
        self._role_set_attributes: Dict[FrozenSet[ClassName], FrozenSet[AttributeName]] = {}

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def _validate_disjoint_attributes(self) -> None:
        seen: Dict[AttributeName, ClassName] = {}
        for name in sorted(self._classes):
            for attribute in self._attributes[name]:
                if attribute in seen:
                    raise SchemaError(
                        f"attribute {attribute!r} is declared on both {seen[attribute]!r} and {name!r}; "
                        "attribute sets must be pairwise disjoint (Definition 2.1)"
                    )
                seen[attribute] = name

    def _validate_acyclic(self) -> None:
        visiting: Set[ClassName] = set()
        finished: Set[ClassName] = set()

        def visit(node: ClassName, path: List[ClassName]) -> None:
            if node in finished:
                return
            if node in visiting:
                cycle = " -> ".join(path + [node])
                raise SchemaError(f"the isa hierarchy contains a cycle: {cycle}")
            visiting.add(node)
            for parent in self._parents[node]:
                visit(parent, path + [node])
            visiting.discard(node)
            finished.add(node)

        for name in self._classes:
            visit(name, [])

    def _closure(self, start: ClassName, edges: Mapping[ClassName, FrozenSet[ClassName]]) -> FrozenSet[ClassName]:
        result: Set[ClassName] = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in edges[node]:
                if neighbour not in result:
                    result.add(neighbour)
                    stack.append(neighbour)
        return frozenset(result)

    def _compute_components(self) -> Tuple[FrozenSet[ClassName], ...]:
        neighbours: Dict[ClassName, Set[ClassName]] = {name: set() for name in self._classes}
        for sub, sup in self._isa:
            neighbours[sub].add(sup)
            neighbours[sup].add(sub)
        components: List[FrozenSet[ClassName]] = []
        remaining = set(self._classes)
        while remaining:
            seed = sorted(remaining)[0]
            component: Set[ClassName] = {seed}
            stack = [seed]
            while stack:
                node = stack.pop()
                for neighbour in neighbours[node]:
                    if neighbour not in component:
                        component.add(neighbour)
                        stack.append(neighbour)
            components.append(frozenset(component))
            remaining -= component
        return tuple(sorted(components, key=lambda c: sorted(c)))

    def _validate_specialization_graph(self) -> None:
        for component in self._components:
            ordered = sorted(component)
            for i, left in enumerate(ordered):
                for right in ordered[i + 1 :]:
                    if not (self._ancestors[left] & self._ancestors[right]):
                        raise SchemaError(
                            f"classes {left!r} and {right!r} are weakly connected but have no "
                            "common isa-ancestor; the hierarchy is not a specialization graph"
                        )
            roots = [name for name in component if not self._parents[name]]
            if len(roots) != 1:
                raise SchemaError(
                    f"component {sorted(component)!r} has {len(roots)} isa-roots; expected exactly one"
                )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def classes(self) -> FrozenSet[ClassName]:
        """The class names ``C``."""
        return self._classes

    @property
    def isa_edges(self) -> FrozenSet[Tuple[ClassName, ClassName]]:
        """The ``isa`` relation as (subclass, superclass) pairs."""
        return self._isa

    def has_class(self, name: ClassName) -> bool:
        """Return ``True`` if ``name`` is a class of this schema."""
        return name in self._classes

    def require_class(self, name: ClassName) -> None:
        """Raise :class:`SchemaError` unless ``name`` is a class."""
        if name not in self._classes:
            raise SchemaError(f"unknown class {name!r}")

    def attributes_of(self, name: ClassName) -> FrozenSet[AttributeName]:
        """``A(P)``: the attributes introduced at class ``name``."""
        self.require_class(name)
        return self._attributes[name]

    def all_attributes_of(self, name: ClassName) -> FrozenSet[AttributeName]:
        """``A*(P)``: the attributes defined on ``name`` including inherited ones."""
        self.require_class(name)
        return self._all_attributes[name]

    def attributes_of_role_set(self, classes: Iterable[ClassName]) -> FrozenSet[AttributeName]:
        """``A_w``: the union of ``A*(Q)`` over the classes of a role set (memoized)."""
        names = classes if isinstance(classes, frozenset) else frozenset(classes)
        cached = self._role_set_attributes.get(names)
        if cached is None:
            result: Set[AttributeName] = set()
            for name in names:
                result |= self.all_attributes_of(name)
            cached = frozenset(result)
            self._role_set_attributes[names] = cached
        return cached

    def owner_of_attribute(self, attribute: AttributeName) -> Optional[ClassName]:
        """The class that introduces ``attribute``, or ``None``."""
        for name, attributes in self._attributes.items():
            if attribute in attributes:
                return name
        return None

    # -- hierarchy -------------------------------------------------------- #
    def parents(self, name: ClassName) -> FrozenSet[ClassName]:
        """Immediate superclasses of ``name``."""
        self.require_class(name)
        return self._parents[name]

    def children(self, name: ClassName) -> FrozenSet[ClassName]:
        """Immediate subclasses of ``name``."""
        self.require_class(name)
        return self._children[name]

    def ancestors(self, name: ClassName) -> FrozenSet[ClassName]:
        """``isa*`` ancestors of ``name`` (reflexive)."""
        self.require_class(name)
        return self._ancestors[name]

    def descendants(self, name: ClassName) -> FrozenSet[ClassName]:
        """``isa*`` descendants of ``name`` (reflexive)."""
        self.require_class(name)
        return self._descendants[name]

    def isa_star(self, sub: ClassName, sup: ClassName) -> bool:
        """``sub isa* sup``: reflexive-transitive subclass test."""
        self.require_class(sub)
        self.require_class(sup)
        return sup in self._ancestors[sub]

    def is_isa_root(self, name: ClassName) -> bool:
        """Return ``True`` if ``name`` has no superclass."""
        self.require_class(name)
        return not self._parents[name]

    def isa_roots(self) -> FrozenSet[ClassName]:
        """All isa-roots (one per weakly-connected component)."""
        return frozenset(name for name in self._classes if not self._parents[name])

    def root_of(self, name: ClassName) -> ClassName:
        """The isa-root of the component containing ``name``."""
        self.require_class(name)
        component = self._component_of[name]
        for candidate in component:
            if not self._parents[candidate]:
                return candidate
        raise SchemaError(f"component of {name!r} has no root")  # pragma: no cover - excluded by validation

    # -- connectivity ------------------------------------------------------ #
    def weakly_connected_components(self) -> Tuple[FrozenSet[ClassName], ...]:
        """The maximal weakly-connected components of the hierarchy."""
        return self._components

    def component_of(self, name: ClassName) -> FrozenSet[ClassName]:
        """The component containing ``name``."""
        self.require_class(name)
        return self._component_of[name]

    def weakly_connected(self, left: ClassName, right: ClassName) -> bool:
        """Return ``True`` if the two classes are in the same component."""
        self.require_class(left)
        self.require_class(right)
        return self._component_of[left] is self._component_of[right]

    def is_weakly_connected_schema(self) -> bool:
        """Return ``True`` if the whole hierarchy is one component."""
        return len(self._components) == 1

    def restrict_to_component(self, component: AbstractSet[ClassName]) -> "DatabaseSchema":
        """The sub-schema induced by one weakly-connected component."""
        names = frozenset(component)
        if names not in set(self._components):
            raise SchemaError("restrict_to_component expects one of the schema's components")
        return DatabaseSchema(
            names,
            {(sub, sup) for (sub, sup) in self._isa if sub in names and sup in names},
            {name: self._attributes[name] for name in names},
        )

    # -- role sets ---------------------------------------------------------- #
    def role_set_closure(self, classes: Iterable[ClassName]) -> FrozenSet[ClassName]:
        """The isa* closure of a set of classes (upward closure)."""
        result: Set[ClassName] = set()
        for name in classes:
            result |= self._ancestors[name]
        return frozenset(result)

    def is_role_set(self, classes: AbstractSet[ClassName]) -> bool:
        """Return ``True`` if ``classes`` is closed under isa* and pairwise weakly connected."""
        names = frozenset(classes)
        if not names:
            return True
        if not names <= self._classes:
            return False
        if self.role_set_closure(names) != names:
            return False
        ordered = sorted(names)
        return all(self.weakly_connected(ordered[0], other) for other in ordered[1:])

    # -- misc ---------------------------------------------------------------- #
    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseSchema)
            and self._classes == other._classes
            and self._isa == other._isa
            and self._attributes == other._attributes
        )

    def __hash__(self) -> int:
        return hash((self._classes, self._isa, tuple(sorted(self._attributes.items()))))

    def __repr__(self) -> str:
        return (
            f"DatabaseSchema(classes={sorted(self._classes)}, "
            f"isa={sorted(self._isa)}, "
            f"attributes={{ {', '.join(f'{k}: {sorted(v)}' for k, v in sorted(self._attributes.items()))} }})"
        )


__all__ = ["DatabaseSchema", "ClassName", "AttributeName"]
