"""E25: the vectorized kernel -- numpy gathers, raw shard payloads, event floors.

The scale claims of the vector PR, pinned by in-test assertions on the same
six-constraint monitoring workload as E23 (~10^6 mostly-conforming events
from 10^5 accounts):

* the numpy gather kernel streams an encoded batch at least 4x faster than
  the pure-Python fused kernel (it is ~10x on a dev VM: the per-event
  subscript interpreter collapses into a handful of whole-column gathers
  replayed from the batch's cached peel plan);
* a full raw-payload shard dispatch cycle (pack, pickle, unpickle, check)
  is at least 2x faster than the zlib-packed fused cycle -- the payload is
  sliced straight off the history set's ndarray buffers and the worker
  rebuilds it with two ``np.frombuffer`` calls;
* the events-per-shard floor keeps tiny batches off the pool entirely
  (printed as a note: shard counts with and without the floor).

Both engines check the identical verdicts; the assertions are conservative
because dev VMs are noisy -- the printed numbers carry the real ratios.
"""

import pickle
import time

import pytest

from repro.engine import (
    MIN_SHARD_EVENTS,
    HistoryCheckerEngine,
    check_columnar_shard,
    make_shard_task,
    shard_bounds,
    shard_bounds_by_events,
)
from repro.workloads import generators

np = pytest.importorskip("numpy")


@pytest.fixture(scope="module")
def conforming_1m():
    """~10^6 conforming events over 10^5 accounts, plus the six-spec suite."""
    return generators.conforming_banking_stream(seed=2026, objects=100_000, mean_length=10)


def _engine(suite, kind):
    engine = HistoryCheckerEngine(kernel=kind)
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    for name in suite:
        engine.compiled(name)  # compile outside every timer
    return engine


def _timed_stream(engine, events, runs=4):
    """Best-of-``runs`` feed of a pre-encoded batch, plus the last stream."""
    batch = engine.encode_events(events)
    best, stream = float("inf"), None
    for _ in range(runs):
        stream = engine.open_stream()
        start = time.perf_counter()
        stream.feed_events(batch)
        best = min(best, time.perf_counter() - start)
    return best, stream


def test_e25_vector_streaming_beats_fused(benchmark, run_once, conforming_1m):
    _histories, events, suite = conforming_1m
    fused = _engine(suite, "fused")
    vector = _engine(suite, "vector")

    fused_elapsed, fused_stream = _timed_stream(fused, events)
    vector_elapsed, vector_stream = _timed_stream(vector, events)

    batch = vector.encode_events(events)

    def ten_vector_streams():
        # The tracked unit is ten full feeds: one warm feed sits under the
        # CI gate's 50ms tracking floor, which would silently untrack E25.
        for _ in range(10):
            stream = vector.open_stream()
            stream.feed_events(batch)
        return stream

    run_once(benchmark, ten_vector_streams)
    speedup = fused_elapsed / vector_elapsed
    print(
        f"\n[E25] streaming {len(events)} events x {len(suite)} specs: "
        f"fused {fused_elapsed * 1000:.0f}ms, vector {vector_elapsed * 1000:.0f}ms, "
        f"speedup {speedup:.1f}x"
    )
    for name in suite:
        assert vector_stream.verdicts(name) == fused_stream.verdicts(name), name
    assert speedup >= 4.0, f"expected >= 4x over the fused kernel, got {speedup:.2f}x"


def test_e25_raw_shard_dispatch_beats_zlib(benchmark, run_once, conforming_1m):
    histories, _events, suite = conforming_1m
    names = tuple(suite)
    shard_size = 8192
    protocol = pickle.HIGHEST_PROTOCOL
    engines = {kind: _engine(suite, kind) for kind in ("fused", "vector")}

    # Histories are encoded once per engine outside the timers (encode-once
    # is shared by both dispatch paths and E23 already tracks it).
    prepared = {
        kind: (
            engines[kind].encode_histories(histories),
            engines[kind]._kernel_for(names),
            [(name, engines[kind].compiled(name)) for name in names],
        )
        for kind in engines
    }

    def dispatch_cycle(kind):
        """One pool shard end to end: pack, ship, rebuild, check."""
        history_set, kernel, specs = prepared[kind]
        task = pickle.dumps(
            make_shard_task(kernel, specs, kernel.shard_payload(history_set, 0, shard_size)),
            protocol,
        )
        return check_columnar_shard(pickle.loads(task))

    elapsed = {}
    verdicts = {}
    for kind in engines:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            verdicts[kind] = dispatch_cycle(kind)
            best = min(best, time.perf_counter() - start)
        elapsed[kind] = best

    def twenty_dispatch_cycles():
        # Twenty cycles keep the tracked unit above the CI gate's 50ms
        # tracking floor (one raw cycle is a few milliseconds).
        for _ in range(20):
            result = dispatch_cycle("vector")
        return result

    run_once(benchmark, twenty_dispatch_cycles)
    speedup = elapsed["fused"] / elapsed["vector"]
    print(
        f"\n[E25] shard dispatch cycle ({shard_size} histories x {len(names)} specs): "
        f"zlib+fused {elapsed['fused'] * 1000:.0f}ms, raw+vector {elapsed['vector'] * 1000:.0f}ms, "
        f"speedup {speedup:.1f}x"
    )
    assert verdicts["vector"] == verdicts["fused"]
    assert speedup >= 2.0, f"expected >= 2x over the zlib dispatch cycle, got {speedup:.2f}x"

    # The events-per-shard floor: a tiny batch that the old history-count
    # sizing would have split across pool workers now stays serial.
    tiny = engines["vector"].encode_histories(histories[:64])
    old_shards = len(shard_bounds(64, 16))
    floored = len(shard_bounds_by_events(tiny.offsets, 16, MIN_SHARD_EVENTS))
    print(
        f"[E25] tiny batch (64 histories, {tiny.offsets[-1]} events): "
        f"{old_shards} shards by history count, {floored} with the "
        f"{MIN_SHARD_EVENTS}-event floor (pool skipped)"
    )
    assert old_shards > 1
    assert floored == 1
