"""Random workload generators for the scaling experiments (E18/E19)
and event-stream generators for the streaming history-checker engine.

The paper has no experimental evaluation, so the reproduction adds two
scaling studies: how the migration-graph construction and the decision
procedures behave as schemas, transaction schemas and inventories grow.
The stream generators (:func:`random_histories`, :func:`event_stream`,
:func:`banking_event_stream`, :func:`university_event_stream`,
:func:`immigration_event_stream`) produce interleaved per-object role-set
event streams at 10⁴-10⁶ objects for the engine benchmarks; the near-miss
generators (:func:`near_miss_histories`, :func:`near_miss_banking_stream`)
emit adversarial traffic that violates its guiding spec at exactly one
chosen event, for the violation-diagnostics tests and examples.

**Determinism contract.**  Every randomized entry point takes an explicit
``seed`` -- or, keyword-only, an already seeded ``rng``
(:class:`random.Random`) to share one generator across several calls --
and never touches the global :mod:`random` state.  Same seed, same Python
version: identical output, so benchmark numbers and fuzz cases are
reproducible run to run (pinned by ``tests/workloads/
test_generator_determinism.py``).  Passing neither seed nor rng is an
error, not silent nondeterminism.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


from repro.core.rolesets import RoleSet, enumerate_role_sets
from repro.formal import regex as rx
from repro.language.transactions import Transaction, TransactionSchema
from repro.language.updates import Create, Delete, Generalize, Modify, Specialize
from repro.model.conditions import Condition
from repro.model.schema import DatabaseSchema
from repro.model.values import Variable

#: One event of an object-history stream: ``(object id, role set)``.
Event = Tuple[int, RoleSet]


def _resolve_rng(seed: Optional[int], rng: Optional[random.Random]) -> random.Random:
    """The generator to draw from: ``rng`` when given, else ``Random(seed)``."""
    if rng is not None:
        return rng
    if seed is None:
        raise ValueError(
            "pass an explicit seed= or rng=; the workload generators refuse implicit "
            "(non-reproducible) randomness"
        )
    return random.Random(seed)


def random_schema(
    seed: Optional[int] = None,
    classes: int = 5,
    attributes_per_class: int = 1,
    root_attributes: int = 2,
    *,
    rng: Optional[random.Random] = None,
) -> DatabaseSchema:
    """A random weakly-connected schema with a single isa-root.

    Class ``C0`` is the root; every other class picks one or two parents
    among the previously generated classes, producing a rooted DAG with some
    multiple inheritance.
    """
    rng = _resolve_rng(seed, rng)
    names = [f"C{i}" for i in range(classes)]
    isa = set()
    for index in range(1, classes):
        parents = {names[rng.randrange(0, index)]}
        if index >= 2 and rng.random() < 0.3:
            parents.add(names[rng.randrange(0, index)])
        for parent in parents:
            isa.add((names[index], parent))
    attribute_map: Dict[str, set] = {}
    counter = 0
    for index, name in enumerate(names):
        count = root_attributes if index == 0 else attributes_per_class
        attribute_map[name] = {f"A{counter + offset}" for offset in range(count)}
        counter += count
    return DatabaseSchema(names, isa, attribute_map)


def random_transactions(
    schema: DatabaseSchema,
    seed: Optional[int] = None,
    transactions: int = 4,
    updates_per_transaction: int = 3,
    constants: Sequence[object] = ("k1", "k2"),
    *,
    rng: Optional[random.Random] = None,
) -> TransactionSchema:
    """A random SL transaction schema over ``schema``.

    Each transaction starts with a ``create`` on the root (so objects exist
    to migrate) followed by a mix of specialize / generalize / modify /
    delete steps whose selections test a root attribute against either a
    constant or the transaction's parameter.
    """
    rng = _resolve_rng(seed, rng)
    root = sorted(schema.isa_roots())[0]
    root_attributes = sorted(schema.attributes_of(root))
    key = root_attributes[0]
    non_roots = sorted(schema.classes - {root})
    members: List[Transaction] = []
    for t_index in range(transactions):
        x = Variable("x")
        values = Condition()
        for attribute in root_attributes:
            values = values.and_equal(attribute, x)
        updates: List = [Create(root, values)]
        for _ in range(updates_per_transaction):
            pick = rng.random()
            term = x if rng.random() < 0.6 else constants[rng.randrange(len(constants))]
            selection = Condition.of(**{key: term})
            if pick < 0.45 and non_roots:
                child = non_roots[rng.randrange(len(non_roots))]
                parent = sorted(schema.parents(child))[0]
                new_values = Condition()
                for attribute in sorted(
                    schema.all_attributes_of(child) - schema.all_attributes_of(parent)
                ):
                    new_values = new_values.and_equal(attribute, x)
                updates.append(Specialize(parent, child, selection, new_values))
            elif pick < 0.7 and non_roots:
                child = non_roots[rng.randrange(len(non_roots))]
                updates.append(Generalize(child, selection))
            elif pick < 0.9:
                target = rng.choice(root_attributes)
                updates.append(Modify(root, selection, Condition.of(**{target: term})))
            else:
                updates.append(Delete(root, selection))
        members.append(Transaction(f"T{t_index}", updates))
    return TransactionSchema(schema, members)


def random_role_set_regex(
    schema: DatabaseSchema,
    seed: Optional[int] = None,
    size: int = 6,
    *,
    rng: Optional[random.Random] = None,
) -> rx.Regex:
    """A random regular expression over the non-empty role sets of ``schema``.

    ``size`` controls the number of symbol occurrences; the shape mixes
    concatenation, union and star so that the synthesized migration graphs
    have branching and loops.
    """
    rng = _resolve_rng(seed, rng)
    role_sets = [rs for rs in enumerate_role_sets(schema) if rs]

    def leaf() -> rx.Regex:
        return rx.Symbol(role_sets[rng.randrange(len(role_sets))])

    def build(budget: int) -> rx.Regex:
        if budget <= 1:
            return leaf()
        choice = rng.random()
        left_budget = max(1, budget // 2)
        right_budget = max(1, budget - left_budget)
        if choice < 0.45:
            return rx.Concat(build(left_budget), build(right_budget))
        if choice < 0.75:
            return rx.Union(build(left_budget), build(right_budget))
        return rx.Concat(leaf(), rx.Star(build(budget - 1)))

    return build(size).simplify()


def random_words(
    alphabet: Sequence[object],
    seed: Optional[int] = None,
    count: int = 100,
    max_length: int = 8,
    *,
    rng: Optional[random.Random] = None,
) -> List[Tuple]:
    """Random words over an alphabet, used by the decision-procedure benchmarks."""
    rng = _resolve_rng(seed, rng)
    words = []
    for _ in range(count):
        length = rng.randrange(0, max_length + 1)
        words.append(tuple(alphabet[rng.randrange(len(alphabet))] for _ in range(length)))
    return words


# --------------------------------------------------------------------------- #
# Event-stream generators for the streaming engine (E20)
# --------------------------------------------------------------------------- #
def spec_walk_histories(
    automaton,
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    noise: float = 0.05,
    *,
    rng: Optional[random.Random] = None,
) -> Iterator[Tuple[RoleSet, ...]]:
    """Object histories that mostly follow ``automaton``, with injected noise.

    Each history is a random walk over the automaton's subset states:
    while the walk is alive it picks uniformly among the symbols with a
    non-empty successor, and with probability ``noise`` (or once dead) it
    picks an arbitrary alphabet symbol instead -- so a tunable fraction of
    the histories violates the specification, as a realistic checking
    workload does.  Deterministic given ``seed``.
    """
    rng = _resolve_rng(seed, rng)
    symbols = automaton.sorted_alphabet()
    if not symbols:
        raise ValueError("the specification automaton has an empty alphabet")
    start = automaton.epsilon_closure(automaton.initial_states)
    alive_options: Dict = {}

    def options(state):
        cached = alive_options.get(state)
        if cached is None:
            cached = [
                (symbol, target)
                for symbol in symbols
                for target in (automaton.step(state, symbol),)
                if target
            ]
            alive_options[state] = cached
        return cached

    for _ in range(objects):
        length = rng.randint(1, 2 * mean_length - 1)
        word: List[RoleSet] = []
        state = start
        for _ in range(length):
            choices = options(state) if state else ()
            if choices and rng.random() >= noise:
                symbol, state = choices[rng.randrange(len(choices))]
            else:
                symbol = symbols[rng.randrange(len(symbols))]
                state = automaton.step(state, symbol) if state else state
            word.append(symbol)
        yield tuple(word)


def random_histories(
    role_sets: Sequence[RoleSet],
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    *,
    rng: Optional[random.Random] = None,
) -> Iterator[Tuple[RoleSet, ...]]:
    """Uniformly random object histories over ``role_sets`` (pure noise)."""
    rng = _resolve_rng(seed, rng)
    for _ in range(objects):
        length = rng.randint(1, 2 * mean_length - 1)
        yield tuple(role_sets[rng.randrange(len(role_sets))] for _ in range(length))


def event_stream(
    histories: Sequence[Sequence[RoleSet]],
    seed: Optional[int] = None,
    *,
    rng: Optional[random.Random] = None,
) -> List[Event]:
    """Interleave per-object histories into one global event stream.

    The arrival order across objects is a deterministic shuffle of the
    multiset of object ids; *within* one object the event order is its
    history order, which is the contract the streaming cursors rely on.
    """
    arrival = [object_id for object_id, history in enumerate(histories) for _ in history]
    _resolve_rng(seed, rng).shuffle(arrival)
    positions = [0] * len(histories)
    events: List[Event] = []
    for object_id in arrival:
        index = positions[object_id]
        positions[object_id] = index + 1
        events.append((object_id, histories[object_id][index]))
    return events


def banking_event_stream(
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    noise: float = 0.05,
    *,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[RoleSet, ...]], List[Event]]:
    """Account-lifecycle histories guided by the checking-role inventory.

    Returns ``(histories, events)``: the per-object ground truth and the
    interleaved stream, so callers can cross-check streaming verdicts
    against one-shot membership.
    """
    from repro.workloads import banking

    guide = banking.checking_role_inventory().automaton
    histories = list(spec_walk_histories(guide, seed, objects, mean_length, noise, rng=rng))
    return histories, event_stream(histories, None if seed is None else seed + 1, rng=rng)


def university_event_stream(
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    noise: float = 0.05,
    *,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[RoleSet, ...]], List[Event]]:
    """Person-lifecycle histories guided by the Example 3.4 "all" family."""
    from repro.workloads import university

    guide = university.expected_families()["all"].automaton
    histories = list(spec_walk_histories(guide, seed, objects, mean_length, noise, rng=rng))
    return histories, event_stream(histories, None if seed is None else seed + 1, rng=rng)


def mcl_event_stream(
    text: str,
    schema: DatabaseSchema,
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    noise: float = 0.05,
    name: Optional[str] = None,
    *,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[RoleSet, ...]], List[Event]]:
    """Spec-guided histories driven directly by MCL constraint text.

    ``text`` is compiled against ``schema`` (:mod:`repro.spec`); the
    constraint named ``name`` -- or the only one, when the source defines
    exactly one -- guides the random walk exactly like the hand-built
    automata in the workload-specific generators above.  Returns
    ``(histories, events)`` as the other stream generators do.
    """
    from repro.spec import compile_constraint

    guide = compile_constraint(text, schema, name=name).automaton
    histories = list(spec_walk_histories(guide, seed, objects, mean_length, noise, rng=rng))
    return histories, event_stream(histories, None if seed is None else seed + 1, rng=rng)


def immigration_event_stream(
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    *,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[RoleSet, ...]], List[Event]]:
    """Visa-status histories: uniform noise over the immigration role sets."""
    from repro.workloads import immigration

    role_sets = [rs for rs in enumerate_role_sets(immigration.schema()) if rs]
    histories = list(random_histories(role_sets, seed, objects, mean_length, rng=rng))
    return histories, event_stream(histories, None if seed is None else seed + 1, rng=rng)


# --------------------------------------------------------------------------- #
# Columnar generators for the fused engine (E23)
# --------------------------------------------------------------------------- #
def compiled_walk_histories(
    spec,
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    noise: float = 0.05,
    *,
    rng: Optional[random.Random] = None,
) -> Iterator[Tuple[RoleSet, ...]]:
    """Object histories guided by a *compiled* specification table.

    Unlike :func:`spec_walk_histories` -- whose notion of "alive" is a
    non-empty subset-successor, which on product automata routinely wanders
    into states no acceptance is reachable from -- this walk uses the
    compiled table's exact ``doomed`` data: while alive it picks uniformly
    among the symbols whose successor can still be accepted, and only with
    probability ``noise`` (or once doomed) an arbitrary symbol.  Guiding by
    a conjunction spec therefore yields *conforming traffic*: histories
    whose every prefix stays viable for every conjoined constraint.
    """
    rng = _resolve_rng(seed, rng)
    width = spec.n_symbols
    table = spec.table
    doomed = spec.doomed
    symbols = spec.symbols
    dead = spec.dead
    viable: Dict[int, List[int]] = {}
    for _ in range(objects):
        length = rng.randint(1, 2 * mean_length - 1)
        word: List[RoleSet] = []
        state = spec.initial
        for _ in range(length):
            options = viable.get(state)
            if options is None:
                options = [
                    code for code in range(width) if not doomed[table[state * width + code]]
                ]
                viable[state] = options
            if options and rng.random() >= noise:
                code = options[rng.randrange(len(options))]
            else:
                code = rng.randrange(width)
            word.append(symbols[code])
            state = table[state * width + code] if state != dead else state
        yield tuple(word)


def conjunction_guide(specs: Sequence):
    """One compiled spec accepting exactly the histories every spec accepts.

    ``specs`` are inventories or automata (anything ``check_batch`` takes);
    the intersection is compiled to a table whose ``doomed`` data is exact,
    which is what :func:`compiled_walk_histories` needs to emit traffic that
    conforms to a whole monitoring suite at once.
    """
    from repro.engine.compiler import compile_spec
    from repro.formal import operations as ops
    from repro.formal.nfa import NFA

    automata = [spec if isinstance(spec, NFA) else spec.automaton for spec in specs]
    alphabet = set()
    for automaton in automata:
        alphabet |= set(automaton.alphabet)
    product = automata[0].with_alphabet(alphabet)
    for automaton in automata[1:]:
        product = ops.intersection(product, automaton.with_alphabet(alphabet))
    return compile_spec(product)


def encoded_event_stream(
    histories: Sequence[Sequence[RoleSet]],
    alphabet,
    seed: Optional[int] = None,
    *,
    rng: Optional[random.Random] = None,
):
    """A pre-encoded interleaved stream: interleave, then encode **once**.

    The columnar twin of :func:`event_stream`: object ids are the (already
    dense) history indexes and every symbol is encoded against ``alphabet``
    -- pass ``engine.alphabet`` so the batch feeds straight into
    :meth:`repro.engine.engine.StreamChecker.feed_events` with zero
    per-spec hashing.
    """
    from repro.engine.batch import EncodedBatch

    return EncodedBatch.from_events(event_stream(histories, seed, rng=rng), alphabet)


def banking_monitoring_suite() -> Dict[str, object]:
    """Six simultaneous account constraints over the banking role sets.

    A realistic multi-spec monitoring workload for the fused kernel
    benchmarks: the two paper-derived inventories plus four operational
    policies, all over the same alphabet.
    """
    from repro.core.inventory import MigrationInventory
    from repro.workloads import banking

    def inventory(text: str) -> MigrationInventory:
        return MigrationInventory.from_text(
            text, banking.SYMBOLS, alphabet=banking.ROLE_SETS, prefix_close=True
        )

    return {
        "checking_roles": banking.checking_role_inventory(),
        "no_downgrade": banking.no_downgrade_inventory(),
        "single_role": inventory("0* ([IC]|[RC]) ([IC]|[RC])* 0*"),
        "starts_regular": inventory("0* [RC] ([IC]|[RC])* 0*"),
        "interest_end": inventory("0* ([IC]|[RC])* [IC] 0*"),
        "one_downgrade": inventory("0* [RC]* [IC]* [RC]* [IC]* 0*"),
    }


def conforming_banking_stream(
    seed: Optional[int] = None,
    objects: int = 100,
    mean_length: int = 10,
    noise: float = 0.02,
    *,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[RoleSet, ...]], List[Event], Dict[str, object]]:
    """Mostly-conforming traffic for the whole banking monitoring suite.

    Histories follow the *conjunction* of every suite constraint (so, up to
    ``noise``, each prefix stays viable for all of them -- production
    checking traffic, where violations are the exception), interleaved into
    one stream.  Returns ``(histories, events, suite)``.
    """
    suite = banking_monitoring_suite()
    guide = conjunction_guide(list(suite.values()))
    histories = list(compiled_walk_histories(guide, seed, objects, mean_length, noise, rng=rng))
    return histories, event_stream(histories, None if seed is None else seed + 1, rng=rng), suite


# --------------------------------------------------------------------------- #
# Near-miss / adversarial generators for the violation diagnostics (PR 5)
# --------------------------------------------------------------------------- #
def near_miss_histories(
    spec,
    seed: Optional[int] = None,
    objects: int = 100,
    violate_at: int = 5,
    tail: int = 2,
    *,
    rng: Optional[random.Random] = None,
    alien: Optional[RoleSet] = None,
) -> Iterator[Tuple[RoleSet, ...]]:
    """Histories that violate ``spec`` at exactly event index ``violate_at``.

    ``spec`` is a compiled table (:class:`repro.engine.compiler.
    CompiledSpec`), whose exact ``doomed`` data is what "violate *exactly
    here*" needs: the first ``violate_at`` events each keep the prefix
    viable (acceptance still reachable), the event at index ``violate_at``
    is chosen among the symbols whose successor is doomed, and ``tail``
    arbitrary further events follow -- monitors must keep absorbing events
    for objects already beyond saving.  This is the adversarial complement
    of :func:`compiled_walk_histories`: instead of mostly-conforming
    traffic, every object is a near miss whose fatal event is known by
    construction (the shape the diagnostics tests pin ``explain()``
    against).

    Raises ``ValueError`` when the walk cannot stay viable for
    ``violate_at`` events or a state has no fatal in-alphabet symbol --
    unless ``alien`` (a symbol outside the spec's alphabet, always fatal)
    is provided as the escape hatch.
    """
    rng = _resolve_rng(seed, rng)
    width = spec.n_symbols
    table = spec.table
    doomed = spec.doomed
    symbols = spec.symbols
    viable: Dict[int, List[int]] = {}
    fatal: Dict[int, List[int]] = {}

    def options(state: int, want_doomed: bool) -> List[int]:
        cache = fatal if want_doomed else viable
        cached = cache.get(state)
        if cached is None:
            cached = [
                code
                for code in range(width)
                if bool(doomed[table[state * width + code]]) == want_doomed
            ]
            cache[state] = cached
        return cached

    for _ in range(objects):
        word: List[RoleSet] = []
        state = spec.initial
        for index in range(violate_at):
            choices = options(state, want_doomed=False)
            if not choices:
                raise ValueError(
                    f"cannot stay viable for {violate_at} events: no non-doomed "
                    f"successor after {index} events"
                )
            code = choices[rng.randrange(len(choices))]
            word.append(symbols[code])
            state = table[state * width + code]
        killers = options(state, want_doomed=True)
        if killers:
            code = killers[rng.randrange(len(killers))]
            word.append(symbols[code])
        elif alien is not None:
            word.append(alien)
        else:
            raise ValueError(
                f"no fatal symbol exists after {violate_at} conforming events; "
                f"pass alien= (a symbol outside the spec's alphabet) to force the violation"
            )
        for _ in range(tail):
            word.append(symbols[rng.randrange(width)])
        yield tuple(word)


def near_miss_banking_stream(
    seed: Optional[int] = None,
    objects: int = 100,
    violate_at: int = 5,
    tail: int = 2,
    *,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[RoleSet, ...]], List[Event]]:
    """An interleaved banking stream where every account is a near miss.

    Each account conforms to the checking-roles constraint for exactly
    ``violate_at`` events and violates it on the next one; the interleaved
    stream is what the violation-triage example and the diagnostics tests
    feed a monitoring session.  Returns ``(histories, events)``.
    """
    from repro.engine.compiler import compile_spec
    from repro.workloads import banking

    rng = _resolve_rng(seed, rng)
    guide = compile_spec(banking.checking_role_inventory().automaton)
    histories = list(
        near_miss_histories(guide, objects=objects, violate_at=violate_at, tail=tail, rng=rng)
    )
    return histories, event_stream(histories, rng=rng)


__all__ = [
    "random_schema",
    "random_transactions",
    "random_role_set_regex",
    "random_words",
    "spec_walk_histories",
    "random_histories",
    "event_stream",
    "banking_event_stream",
    "university_event_stream",
    "mcl_event_stream",
    "immigration_event_stream",
    "compiled_walk_histories",
    "conjunction_guide",
    "encoded_event_stream",
    "banking_monitoring_suite",
    "conforming_banking_stream",
    "near_miss_histories",
    "near_miss_banking_stream",
]
