"""Deterministic fault injection for the chaos suites.

The fault-tolerance layers (:mod:`repro.engine.supervisor`,
:mod:`repro.engine.journal`) are tested by *injecting* the failures they
claim to survive -- worker death mid-shard, exceptions and delays at named
execution sites, bit-flipped or torn wire payloads -- under seeds, so every
chaos case is reproducible from its parameters alone.

Production modules declare **sites**: named points that call :func:`fire`.
A disarmed harness (the default, and the only state outside the chaos
suites) makes a site one module-global ``is None`` check.  Arming installs
a :class:`FaultInjector` built from :class:`FaultSpec` rows::

    injector = FaultInjector(
        [FaultSpec("worker.shard", "kill", times=1)],
        seed=7,
        scope_dir=tmp_path,          # budgets shared across processes
    )
    with inject(injector):
        engine.check_batch_all(histories)   # first shard kills its worker

Cross-process semantics: pool workers inherit the installed injector on
fork platforms, and :meth:`FaultInjector.initializer` arms spawned workers
explicitly (pass it to :class:`repro.engine.executor.ProcessPoolBackend`).
Budgeted specs (``times=N``) draw tokens from an append-only counter file
under ``scope_dir``, so "fail the first N executions" holds across every
process touching the site -- retried shards stop failing once the budget
is spent, whatever worker they land on.

Actions:

``raise``
    Raise :class:`FaultError` at the site (a transient task failure).
``delay``
    Sleep ``delay`` seconds (a hung worker, from a deadline's viewpoint).
``kill``
    ``os._exit(KILL_EXIT_CODE)`` -- the process dies without cleanup, the
    way a segfault or an OOM kill takes out a pool worker.
``flip``
    Flip seeded bits of the site's ``bytes`` payload (wire corruption).
``truncate``
    Drop a seeded-length tail of the payload (a torn write).

:func:`bit_flip` and :func:`tear_file` are the standalone corruption
helpers the fuzz suites apply to snapshot blobs and journal files at rest.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

#: The status a ``kill`` action exits the process with; distinctive enough
#: to recognize in pool post-mortems.
KILL_EXIT_CODE = 113

_ACTIONS = ("raise", "delay", "kill", "flip", "truncate")


class FaultError(RuntimeError):
    """The exception injected by ``raise`` actions (and only by them)."""


class FaultSpec:
    """One arming rule: what happens at a site, how often, how many times.

    Parameters
    ----------
    site:
        The site name the rule matches (exact match).
    action:
        One of ``raise`` / ``delay`` / ``kill`` / ``flip`` / ``truncate``.
    times:
        Fire at most this many times across *all* processes sharing the
        injector's scope (``None`` = unbounded).
    after:
        Skip the first ``after`` triggers of the site before firing.
    probability:
        Fire each eligible trigger only with this probability (seeded;
        ``None`` = always).
    delay:
        Seconds to sleep for ``delay`` actions.
    flips:
        Bits to flip for ``flip`` actions.
    """

    __slots__ = ("site", "action", "times", "after", "probability", "delay", "flips")

    def __init__(
        self,
        site: str,
        action: str,
        times: Optional[int] = 1,
        after: int = 0,
        probability: Optional[float] = None,
        delay: float = 0.05,
        flips: int = 1,
    ) -> None:
        if action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, not {action!r}")
        self.site = site
        self.action = action
        self.times = times
        self.after = after
        self.probability = probability
        self.delay = delay
        self.flips = flips

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSpec({self.site!r}, {self.action!r}, times={self.times})"

    # FaultSpec crosses the pickle boundary inside FaultInjector blobs.
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


class FaultInjector:
    """A seeded set of :class:`FaultSpec` rules, installable process-wide.

    ``scope_dir`` makes trigger counting and budgets *cross-process*: each
    ``(site, rule)`` pair owns an append-only token file there, and a
    trigger claims the next token with one ``O_APPEND`` write -- atomic on
    POSIX, so concurrent pool workers serialize on the file, not on locks.
    Without a scope dir, counters are plain in-process integers.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec],
        seed: int = 0,
        scope_dir: Optional[str] = None,
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.scope_dir = None if scope_dir is None else os.fspath(scope_dir)
        self._rng = random.Random(seed)
        self._local_counts: Dict[int, int] = {}
        #: Site -> times fired, in this process (introspection for tests).
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Trigger accounting
    # ------------------------------------------------------------------ #
    def _next_trigger(self, rule_index: int) -> int:
        """The 0-based global trigger ordinal for one rule, claimed now."""
        if self.scope_dir is None:
            ordinal = self._local_counts.get(rule_index, 0)
            self._local_counts[rule_index] = ordinal + 1
            return ordinal
        path = os.path.join(self.scope_dir, f"fault-{rule_index}.tokens")
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, b"x")
            return os.fstat(fd).st_size - 1
        finally:
            os.close(fd)

    def _mutate(self, spec: FaultSpec, payload, ordinal: int):
        if not isinstance(payload, (bytes, bytearray)) or not payload:
            return payload
        rng = random.Random((self.seed, spec.site, ordinal))
        if spec.action == "flip":
            return bit_flip(bytes(payload), rng=rng, flips=spec.flips)
        keep = rng.randrange(len(payload))
        return bytes(payload)[:keep]

    def fire(self, site: str, payload=None):
        """Trigger one site; returns the (possibly mutated) payload.

        ``raise``/``delay``/``kill`` act on control flow; ``flip`` and
        ``truncate`` act on a ``bytes`` payload and return the mutated
        copy (sites that carry no payload pass them through unchanged).
        """
        for rule_index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            ordinal = self._next_trigger(rule_index)
            if ordinal < spec.after:
                continue
            if spec.times is not None and ordinal >= spec.after + spec.times:
                continue
            if spec.probability is not None:
                decider = random.Random((self.seed, site, "p", ordinal))
                if decider.random() >= spec.probability:
                    continue
            self.fired[site] = self.fired.get(site, 0) + 1
            if spec.action == "raise":
                raise FaultError(f"injected fault at {site} (trigger {ordinal})")
            if spec.action == "delay":
                time.sleep(spec.delay)
            elif spec.action == "kill":
                os._exit(KILL_EXIT_CODE)
            else:
                payload = self._mutate(spec, payload, ordinal)
        return payload

    # ------------------------------------------------------------------ #
    # Cross-process installation
    # ------------------------------------------------------------------ #
    def initializer(self):
        """``(function, args)`` arming this injector in a spawned worker.

        Pass as ``ProcessPoolBackend(initializer=f, initargs=a)``; fork
        platforms inherit the installed injector anyway, and re-installing
        the same blob is harmless (budgets live in ``scope_dir`` files).
        """
        return _install_pickled, (pickle.dumps(self),)

    def __getstate__(self):
        state = dict(self.__dict__)
        # The RNG and per-process counters are process-local by design.
        state["_rng"] = None
        state["_local_counts"] = {}
        state["fired"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rng = random.Random(self.seed)


#: The process-wide armed injector; ``None`` keeps every site disarmed.
_ACTIVE: Optional[FaultInjector] = None


def installed() -> Optional[FaultInjector]:
    """The armed injector, or ``None`` when every site is disarmed."""
    return _ACTIVE


def install(injector: FaultInjector) -> None:
    """Arm ``injector`` process-wide (replacing any armed one)."""
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    """Disarm every site."""
    global _ACTIVE
    _ACTIVE = None


def _install_pickled(blob: bytes) -> None:
    """Pool-worker initializer target (module-level so it pickles)."""
    install(pickle.loads(blob))


@contextmanager
def inject(injector: FaultInjector):
    """Arm ``injector`` for the duration of the block, then disarm."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def fire(site: str, payload=None):
    """The site entry point production modules call.

    Disarmed (the permanent state outside chaos suites) this is one global
    read and one ``is None`` check; armed, it delegates to the injector and
    returns the possibly mutated payload.
    """
    injector = _ACTIVE
    if injector is None:
        return payload
    return injector.fire(site, payload)


# --------------------------------------------------------------------------- #
# Corruption helpers (applied to blobs and files at rest by the fuzz suites)
# --------------------------------------------------------------------------- #
def bit_flip(
    blob: bytes,
    seed: Optional[int] = None,
    flips: int = 1,
    rng: Optional[random.Random] = None,
) -> bytes:
    """``blob`` with ``flips`` seeded single-bit flips (empty blobs pass)."""
    if not blob:
        return blob
    rng = rng if rng is not None else random.Random(seed)
    mutated = bytearray(blob)
    for _ in range(flips):
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
    return bytes(mutated)


def tear_file(path, drop: Optional[int] = None, seed: int = 0) -> int:
    """Truncate a file's tail -- a torn final write.  Returns bytes dropped.

    ``drop=None`` picks a seeded size in ``[1, min(64, file size)]``; a
    ``drop`` larger than the file clamps to emptying it.
    """
    size = os.path.getsize(path)
    if size == 0:
        return 0
    if drop is None:
        drop = random.Random(seed).randrange(1, min(64, size) + 1)
    drop = min(drop, size)
    os.truncate(path, size - drop)
    return drop


def corrupt_file(path, seed: int = 0, flips: int = 1) -> None:
    """Bit-flip a file in place (seeded), e.g. a checkpoint blob at rest."""
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(bit_flip(blob, seed=seed, flips=flips))


__all__ = [
    "KILL_EXIT_CODE",
    "FaultError",
    "FaultSpec",
    "FaultInjector",
    "installed",
    "install",
    "uninstall",
    "inject",
    "fire",
    "bit_flip",
    "tear_file",
    "corrupt_file",
]
