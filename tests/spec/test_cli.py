"""Tests for the ``python -m repro.spec`` command-line interface."""

import io

from repro.spec.__main__ import main
from repro.workloads import banking


def _run(argv):
    out, err = io.StringIO(), io.StringIO()
    status = main(argv, out=out, err=err)
    return status, out.getvalue(), err.getvalue()


def test_workloads_listing():
    status, out, err = _run(["workloads"])
    assert status == 0
    for name in ("banking", "university", "immigration", "phd", "three_class"):
        assert name in out
    assert err == ""


def test_check_compiles_a_constraint_file(tmp_path):
    path = tmp_path / "banking.mcl"
    path.write_text(banking.MCL_SOURCE)
    status, out, err = _run(["check", str(path), "--workload", "banking"])
    assert status == 0
    assert "2 constraint(s)" in out
    assert "checking_roles: ok" in out
    assert err == ""


def test_check_with_verify_reports_verdicts(tmp_path):
    path = tmp_path / "banking.mcl"
    path.write_text(banking.MCL_SOURCE)
    status, out, err = _run(["check", str(path), "--workload", "banking", "--verify"])
    # no_downgrade is violated by the transactions, so the exit reflects it.
    assert status == 3
    assert "satisfies" in out
    assert "violates" in out


def test_check_rejects_malformed_file_with_caret(tmp_path):
    path = tmp_path / "bad.mcl"
    path.write_text("constraint c = init (empty* [INTREST_CHECKING]+ empty*)\n")
    status, out, err = _run(["check", str(path), "--workload", "banking"])
    assert status == 1
    assert "unknown class 'INTREST_CHECKING'" in err
    assert "did you mean 'INTEREST_CHECKING'" in err
    assert "^" in err
    assert "Traceback" not in err


def test_check_unknown_workload(tmp_path):
    path = tmp_path / "x.mcl"
    path.write_text("constraint c = empty*\n")
    status, out, err = _run(["check", str(path), "--workload", "nope"])
    assert status == 2
    assert "unknown workload" in err


def test_check_missing_file():
    status, out, err = _run(["check", "/no/such/file.mcl", "--workload", "banking"])
    assert status == 1
    assert "cannot read" in err
