"""Interned automaton alphabets (role set ↔ small integer).

Migration patterns are words over role sets -- frozensets of class names --
so the seed-era automata hashed and ordered raw frozensets everywhere: in
the subset construction, in product automata, in Hopcroft signatures and in
every deterministic ``sorted(..., key=repr)``.  This module provides:

* :class:`RoleSetAlphabet` -- an interner assigning each symbol a small
  integer code, so the determinization/product/minimization hot loops can
  run on integers and map back at the boundary;
* :func:`canonical_symbol_key` -- a total, deterministic ordering key for
  mixed symbol alphabets that orders role sets structurally (by size, then
  by sorted class names) instead of by ``repr`` string;
* :func:`canonical_word_key` -- the induced ordering on words, shared by
  :meth:`repro.core.simulation.SimulationResult.as_migration_patterns` and
  the analysis reports so pattern orderings are stable across runs;
* :func:`intern_nfa` / :func:`restore_nfa` -- rewrite an automaton's
  transition labels to integer codes and back.

Soundness of interned constructions comes from sharing: every automaton
taking part in one product/boolean operation must be interned against the
*same* :class:`RoleSetAlphabet` instance (see
:mod:`repro.formal.operations`, which allocates one interner per
operation), so equal role sets receive equal codes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

Symbol = Hashable


def canonical_symbol_key(symbol: Symbol) -> Tuple:
    """A deterministic, total ordering key for automaton symbols.

    Role sets (and any ``frozenset`` of strings) order structurally by
    ``(size, sorted elements)``; every other symbol falls back to its
    ``repr``.  The leading tag keeps mixed alphabets totally ordered.
    """
    if isinstance(symbol, frozenset):
        try:
            return (0, len(symbol), tuple(sorted(symbol)))
        except TypeError:
            return (0, len(symbol), tuple(sorted(map(repr, symbol))))
    return (1, repr(symbol))


def canonical_word_key(word: Sequence[Symbol]) -> Tuple:
    """The ordering on words induced by :func:`canonical_symbol_key`.

    Orders first by length, then position-wise -- a stable replacement for
    the seed's ``key=repr`` tuple sorting.
    """
    return (len(word), tuple(canonical_symbol_key(symbol) for symbol in word))


def sort_alphabet(symbols: Iterable[Symbol]) -> Tuple[Symbol, ...]:
    """An alphabet in the canonical deterministic order.

    The single ordering used by NFA and DFA alike, so the two automaton
    classes can never drift apart on enumeration order.
    """
    return tuple(sorted(symbols, key=canonical_symbol_key))


class RoleSetAlphabet:
    """A bijective interner between symbols and small integer codes.

    Codes are handed out in first-intern order and never recycled; the
    class is append-only, so a code obtained from one automaton remains
    valid for every later automaton interned against the same instance.

    **Stable extension.**  The append-only contract is what makes the
    interner usable as a long-lived *shared* alphabet (the streaming
    engine keeps one per :class:`repro.engine.engine.HistoryCheckerEngine`
    and encodes every event batch against it exactly once): remap arrays
    built from a shorter snapshot stay correct forever and only ever need
    *appending* when :attr:`version` has moved -- re-registering a spec or
    encoding a batch with unseen symbols can never renumber an existing
    code.  :attr:`version` is a cheap staleness probe for such derived
    tables.
    """

    __slots__ = ("_codes", "_symbols")

    def __init__(self, symbols: Iterable[Symbol] = ()) -> None:
        self._codes: Dict[Symbol, int] = {}
        self._symbols: List[Symbol] = []
        for symbol in symbols:
            self.intern(symbol)

    def intern(self, symbol: Symbol) -> int:
        """The code of ``symbol``, allocating a fresh one on first sight."""
        code = self._codes.get(symbol)
        if code is None:
            code = len(self._symbols)
            self._codes[symbol] = code
            self._symbols.append(symbol)
        return code

    def intern_all(self, symbols: Iterable[Symbol]) -> Tuple[int, ...]:
        """Intern several symbols, preserving order."""
        return tuple(self.intern(symbol) for symbol in symbols)

    def code(self, symbol: Symbol) -> int:
        """The existing code of ``symbol`` (raises ``KeyError`` if unseen)."""
        return self._codes[symbol]

    def encode(self, symbol: Symbol, default: int = -1) -> int:
        """The existing code of ``symbol``, or ``default`` -- never interns."""
        return self._codes.get(symbol, default)

    @property
    def version(self) -> int:
        """A monotonically increasing revision: the number of interned symbols.

        Derived tables (spec remaps, fused kernels) record the version they
        were built against; a larger current version means exactly "new codes
        were appended", never "existing codes moved".
        """
        return len(self._symbols)

    def encode_column(self, column: Sequence[Symbol]) -> List[int]:
        """Intern a whole event column in two C-speed passes.

        Unseen symbols are interned first (one pass over the *distinct*
        symbols), then the column is mapped through the code table with
        :func:`map`, avoiding a per-event interpreted loop.  This is the
        encode-once primitive of the columnar event pipeline.
        """
        fresh = set(column).difference(self._codes)
        if fresh:
            for symbol in sorted(fresh, key=canonical_symbol_key):
                self.intern(symbol)
        return list(map(self._codes.__getitem__, column))

    def symbol(self, code: int) -> Symbol:
        """The symbol carrying ``code``."""
        return self._symbols[code]

    def intern_word(self, word: Sequence[Symbol]) -> Tuple[int, ...]:
        """Intern a word symbol-wise."""
        return tuple(self.intern(symbol) for symbol in word)

    def restore_word(self, codes: Sequence[int]) -> Tuple[Symbol, ...]:
        """Map a word of codes back to symbols."""
        symbols = self._symbols
        return tuple(symbols[code] for code in codes)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._codes

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoleSetAlphabet({len(self._symbols)} symbols)"


def intern_nfa(automaton: "NFA", interner: RoleSetAlphabet) -> "NFA":
    """An isomorphic automaton whose transition labels are integer codes.

    Epsilon moves are preserved as epsilon moves.  The language over codes
    is the image of the original language under the interner.
    """
    from repro.formal.nfa import EPSILON, NFA

    alphabet = interner.intern_all(sort_alphabet(automaton.alphabet))
    transitions = {}
    for (source, symbol), targets in automaton.transitions.items():
        label = symbol if symbol is EPSILON else interner.code(symbol)
        transitions[(source, label)] = targets
    return NFA(
        automaton.states,
        alphabet,
        transitions,
        automaton.initial_states,
        automaton.accepting_states,
    )


def restore_nfa(automaton: "NFA", interner: RoleSetAlphabet) -> "NFA":
    """Invert :func:`intern_nfa`: map integer codes back to their symbols."""
    from repro.formal.nfa import EPSILON, NFA

    alphabet = [interner.symbol(code) for code in automaton.alphabet]
    transitions = {}
    for (source, symbol), targets in automaton.transitions.items():
        label = symbol if symbol is EPSILON else interner.symbol(symbol)
        transitions[(source, label)] = targets
    return NFA(
        automaton.states,
        alphabet,
        transitions,
        automaton.initial_states,
        automaton.accepting_states,
    )


__all__ = [
    "RoleSetAlphabet",
    "canonical_symbol_key",
    "canonical_word_key",
    "sort_alphabet",
    "intern_nfa",
    "restore_nfa",
]
