"""Lightweight span tracing: where does a batch's time go?

A *span* is a named, monotonic-clock timed region with child spans -- the
tree a ``check_batch_all`` call leaves behind reads::

    engine.check_batch_all            41.8ms
      encode.histories                 9.1ms
      pool.dispatch                   30.2ms
        shard.check (worker)           6.9ms
        shard.check (worker)           7.2ms

Spans are created by the :func:`trace` context manager.  When tracing is
disabled (the default) ``trace`` returns one shared no-op context manager:
the hot path pays a single module-attribute check and no allocation, which
is what lets the engine leave its ``trace`` calls permanently in place.

Each thread keeps its own current-span stack (``threading.local``), so
concurrent streams build disjoint trees.  Finished *root* spans land in a
bounded ring (:func:`recent_spans`), newest last -- the introspection
surface the CLI and ``engine.stats`` read.

Cross-process propagation: spans cannot close over a process boundary, so
pool shard tasks carry the dispatching span's integer id
(:func:`repro.engine.batch.make_shard_task`), the worker records its own
span tree, ships it back as a plain dict (:meth:`Span.to_dict`), and the
parent grafts it under the dispatching span (:func:`attach_remote`).
Worker clocks are not comparable to the parent's, so remote spans carry
*durations*, not absolute times.
"""

from __future__ import annotations

import threading
from collections import deque
from itertools import count
from time import perf_counter
from typing import Dict, List, Optional

#: Process-unique span ids; shipped in shard payloads so worker-side trees
#: re-attach to the right parent.
_SPAN_IDS = count(1)

#: Finished root spans kept for introspection.
RECENT_SPAN_LIMIT = 32


class Span:
    """One timed region: name, duration, children, optional metadata."""

    __slots__ = ("name", "span_id", "start", "duration", "children", "meta", "remote")

    def __init__(self, name: str, meta: Optional[Dict] = None) -> None:
        self.name = name
        self.span_id = next(_SPAN_IDS)
        self.start = perf_counter()
        self.duration: float = 0.0
        self.children: List["Span"] = []
        self.meta = meta
        #: True for spans recorded in another process and grafted here.
        self.remote = False

    # ------------------------------------------------------------------ #
    # Wire form (process-pool propagation)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """A picklable tree of plain builtins (durations, not clock times)."""
        payload: Dict = {"name": self.name, "duration": self.duration}
        if self.meta:
            payload["meta"] = dict(self.meta)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Span":
        """Rebuild a span tree shipped by :meth:`to_dict` (marked remote)."""
        span = cls(payload["name"], payload.get("meta"))
        span.duration = float(payload["duration"])
        span.remote = True
        span.children = [cls.from_dict(child) for child in payload.get("children", ())]
        return span

    def render(self, indent: int = 0) -> str:
        """The span tree as an indented text report (durations in ms)."""
        marker = " (remote)" if self.remote else ""
        meta = ""
        if self.meta:
            meta = " " + " ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
        lines = [f"{'  ' * indent}{self.name:<{max(1, 40 - 2 * indent)}}"
                 f"{self.duration * 1000:9.2f}ms{marker}{meta}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1000:.2f}ms, {len(self.children)} children)"


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    name = ""
    span_id = 0
    duration = 0.0
    children: List = []
    meta = None
    remote = False

    def to_dict(self) -> Dict:
        return {"name": "", "duration": 0.0}

    def render(self, indent: int = 0) -> str:
        return ""


class _NoopTrace:
    """The shared disabled-path context manager: no state, no allocation."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc_info) -> None:
        return None


NOOP_SPAN = _NoopSpan()
_NOOP_TRACE = _NoopTrace()


class _TraceContext:
    """The live-path context manager: open a span under the current one."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, meta: Optional[Dict]) -> None:
        self._tracer = tracer
        self._span = Span(name, meta)

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer._pop(self._span)
        return None


class Tracer:
    """Per-thread span stacks plus the bounded finished-root ring."""

    __slots__ = ("enabled", "_local", "_lock", "_finished")

    def __init__(self) -> None:
        self.enabled = False
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: deque = deque(maxlen=RECENT_SPAN_LIMIT)

    # ------------------------------------------------------------------ #
    # Stack mechanics
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: List[Span] = []
            self._local.stack = stack
            return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration = perf_counter() - span.start
        stack = self._stack()
        # Tolerate interleaved exits (generators suspended across spans):
        # remove the span wherever it sits instead of corrupting the stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            stack.remove(span)
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self._finished.append(span)

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    def trace(self, name: str, **meta):
        """A context manager timing ``name`` (no-op while disabled)."""
        if not self.enabled:
            return _NOOP_TRACE
        return _TraceContext(self, name, meta or None)

    def current(self) -> Optional[Span]:
        """The innermost open span of this thread, if tracing is live."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    def recent(self) -> List[Span]:
        """Finished root spans, oldest first (bounded ring)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop the finished-root ring (open stacks are untouched)."""
        with self._lock:
            self._finished.clear()

    def attach_remote(self, parent: Optional[Span], payload: Dict) -> Span:
        """Graft a worker-recorded span tree under ``parent`` (or the ring)."""
        span = Span.from_dict(payload)
        if parent is not None and parent.span_id:
            parent.children.append(span)
        else:
            with self._lock:
                self._finished.append(span)
        return span


#: The process tracer; :mod:`repro.obs` re-exports its bound methods.
TRACER = Tracer()

__all__ = [
    "NOOP_SPAN",
    "RECENT_SPAN_LIMIT",
    "Span",
    "Tracer",
    "TRACER",
]
