"""Observability walkthrough: metrics, span traces, and engine introspection.

The engine layers are permanently instrumented (:mod:`repro.obs`), off by
default, and switchable per process or per engine.  This example

1. switches observability on process-wide (``obs.enable``) and runs a
   streaming monitor plus a sharded batch check over the banking suite,
2. prints the Prometheus text exposition the registry renders -- the exact
   bytes a scrape endpoint would serve -- and the span trees the tracer
   recorded, including remote ``shard.check`` spans grafted back from
   process-pool workers,
3. gives a second engine its *own* registry (``obs=MetricsRegistry(...)``)
   to show per-tenant isolation: its numbers never mix with the default
   registry's, and
4. reads ``engine.stats()``, the always-on introspection dict (cache
   counters live there even with observability off).

Run with:  python examples/observability.py
"""

from repro import obs
from repro.engine import HistoryCheckerEngine, ProcessPoolBackend
from repro.workloads import generators


def build_engine(suite, **kwargs) -> HistoryCheckerEngine:
    engine = HistoryCheckerEngine(**kwargs)
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    return engine


def main() -> None:
    histories, events, suite = generators.conforming_banking_stream(
        seed=11, objects=3_000, mean_length=8
    )

    # ------------------------------------------------------------------ #
    # 1. Process-wide switch: engines built after enable() are instrumented.
    # ------------------------------------------------------------------ #
    registry = obs.enable(obs.MetricsRegistry("example"))
    engine = build_engine(suite, batch_size=256, min_shard_events=0)

    stream = engine.open_stream()
    step = max(1, len(events) // 8)
    for start in range(0, len(events), step):
        stream.feed_events(events[start : start + step])
    failing = sum(
        1
        for verdicts in stream.all_verdicts().values()
        for ok in verdicts.values()
        if not ok
    )
    print(f"streamed {stream.events_seen} events; {failing} failing (object, spec) pairs")

    with ProcessPoolBackend(max_workers=2) as pool:
        engine.check_batch_all(histories[:2_000], executor=pool)

    # ------------------------------------------------------------------ #
    # 2. The exposition surfaces: Prometheus text and recorded span trees.
    # ------------------------------------------------------------------ #
    print("\n-- render_text() (first 12 lines) " + "-" * 30)
    for line in registry.render_text().splitlines()[:12]:
        print(line)

    print("\n-- span trees (pool.dispatch children are worker-side) " + "-" * 9)
    for span in obs.recent_spans():
        print(span.render())

    # ------------------------------------------------------------------ #
    # 3. Per-engine registries isolate tenants.
    # ------------------------------------------------------------------ #
    tenant_registry = obs.MetricsRegistry("tenant-a")
    tenant_engine = build_engine(suite, obs=tenant_registry)
    tenant_engine.open_stream().feed_events(events[:100])
    print("\n-- isolation " + "-" * 52)
    print(f"tenant registry : {tenant_registry.to_dict()['repro_engine_events_total']} events")
    print(f"default registry: {registry.to_dict()['repro_engine_events_total']} events")

    # ------------------------------------------------------------------ #
    # 4. engine.stats() works with observability on or off.
    # ------------------------------------------------------------------ #
    obs.disable()
    plain = build_engine(suite)
    plain.check_batch_all(histories[:200])
    stats = plain.stats()
    print("\n-- engine.stats() on an uninstrumented engine " + "-" * 19)
    print(
        f"kernel={stats['kernel']} specs={stats['specs']} "
        f"spec_cache={stats['spec_cache']['hits']} hits / "
        f"{stats['spec_cache']['misses']} misses; observability={stats['observability']}"
    )


if __name__ == "__main__":
    main()
