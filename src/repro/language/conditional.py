"""The conditional languages CSL+ and CSL (Section 4 of the paper).

A *literal* ``P(Γ)`` (positive) or ``¬P(Γ)`` (negative) tests whether some
object of class ``P`` satisfies the condition ``Γ``.  A *conditional atomic
update* ``δ_1, ..., δ_n → θ`` executes the atomic update ``θ`` only when the
current database satisfies every literal, and otherwise leaves the database
unchanged.  A *conditional transaction* is a sequence of conditional and/or
plain atomic updates; it belongs to **CSL+** when all its literals are
positive and to **CSL** in general.

This module defines the syntax, the static checks of Definition 4.1, and the
semantics of Definitions 4.3-4.4.  The corresponding transaction-schema
class :class:`ConditionalTransactionSchema` mirrors
:class:`repro.language.transactions.TransactionSchema` and is what the
constructions of Theorems 4.3, 4.4 and 4.8 produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple, Union

from repro.language.semantics import compute_update_delta
from repro.language.transactions import Transaction
from repro.language.updates import AtomicUpdate
from repro.model.conditions import Condition
from repro.model.errors import UpdateError
from repro.model.instance import DatabaseInstance
from repro.model.schema import ClassName, DatabaseSchema
from repro.model.values import Assignment, Constant, Variable


@dataclass(frozen=True)
class Literal:
    """A test literal ``P(Γ)`` or ``¬P(Γ)``."""

    class_name: ClassName
    condition: Condition
    positive: bool = True

    def negated(self) -> "Literal":
        """The literal with opposite polarity."""
        return Literal(self.class_name, self.condition, not self.positive)

    @property
    def is_ground(self) -> bool:
        """Return ``True`` if the condition mentions no variable."""
        return self.condition.is_ground

    def variables(self) -> FrozenSet[Variable]:
        """The variables of the condition."""
        return self.condition.variables()

    def constants(self) -> FrozenSet[Constant]:
        """The constants of the condition."""
        return self.condition.constants()

    def substituted(self, assignment: Assignment) -> "Literal":
        """Instantiate the condition's variables."""
        if self.is_ground:
            return self
        return Literal(self.class_name, self.condition.substituted(assignment), self.positive)

    def validate(self, schema: DatabaseSchema) -> None:
        """Check ``Att(Γ) ⊆ A*(P)``."""
        schema.require_class(self.class_name)
        unknown = self.condition.referenced_attributes() - schema.all_attributes_of(self.class_name)
        if unknown:
            raise UpdateError(
                f"literal on {self.class_name!r} references attributes {sorted(unknown)!r} "
                f"outside A*({self.class_name})"
            )

    def holds_in(self, instance: DatabaseInstance) -> bool:
        """``d ⊨ P(Γ)`` / ``d ⊨ ¬P(Γ)`` for a ground literal."""
        if not self.is_ground:
            raise UpdateError(f"cannot evaluate the non-ground literal {self!r}")
        if not self.condition.is_satisfiable():
            witnessed = False
        else:
            witnessed = instance.has_satisfying_object(self.condition, self.class_name)
        return witnessed if self.positive else not witnessed

    def __repr__(self) -> str:
        sign = "" if self.positive else "¬"
        return f"{sign}{self.class_name}({self.condition!r})"


@dataclass(frozen=True)
class ConditionalUpdate:
    """A conditional atomic update ``δ_1, ..., δ_n → θ``."""

    literals: Tuple[Literal, ...]
    update: AtomicUpdate

    def __init__(self, literals: Iterable[Literal], update: AtomicUpdate) -> None:
        object.__setattr__(self, "literals", tuple(literals))
        object.__setattr__(self, "update", update)

    @property
    def is_positive(self) -> bool:
        """Return ``True`` if all literals are positive (CSL+)."""
        return all(literal.positive for literal in self.literals)

    @property
    def is_ground(self) -> bool:
        """Return ``True`` if the update and every literal are ground."""
        return self.update.is_ground and all(literal.is_ground for literal in self.literals)

    def variables(self) -> FrozenSet[Variable]:
        """All variables occurring in the literals or the update."""
        result: Set[Variable] = set(self.update.variables())
        for literal in self.literals:
            result |= literal.variables()
        return frozenset(result)

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in the literals or the update."""
        result: Set[Constant] = set(self.update.constants())
        for literal in self.literals:
            result |= literal.constants()
        return frozenset(result)

    def substituted(self, assignment: Assignment) -> "ConditionalUpdate":
        """Instantiate all variables."""
        if self.is_ground:
            return self
        return ConditionalUpdate(
            (literal.substituted(assignment) for literal in self.literals),
            self.update.substituted(assignment),
        )

    def validate(self, schema: DatabaseSchema) -> None:
        """Validate the literals and the underlying update."""
        for literal in self.literals:
            literal.validate(schema)
        self.update.validate(schema)

    def apply(self, instance: DatabaseInstance) -> DatabaseInstance:
        """Definition 4.3: execute the update iff every literal holds."""
        if all(literal.holds_in(instance) for literal in self.literals):
            return instance.apply_delta(compute_update_delta(self.update, instance))
        return instance

    def __repr__(self) -> str:
        if not self.literals:
            return repr(self.update)
        tests = ", ".join(repr(literal) for literal in self.literals)
        return f"{tests} → {self.update!r}"


#: A step of a conditional transaction: either guarded or a bare atomic update.
ConditionalStep = Union[ConditionalUpdate, AtomicUpdate]


class ConditionalTransaction:
    """A CSL/CSL+ transaction: a named sequence of (conditional) atomic updates."""

    __slots__ = ("_name", "_steps", "_variables", "_ground_cache", "_is_ground")

    def __init__(self, name: str, steps: Iterable[ConditionalStep]) -> None:
        self._name = name
        self._variables: Optional[FrozenSet[Variable]] = None
        self._ground_cache: Optional[Dict[Assignment, "ConditionalTransaction"]] = None
        self._is_ground: Optional[bool] = None
        normalized = []
        for step in steps:
            if isinstance(step, AtomicUpdate):
                normalized.append(ConditionalUpdate((), step))
            elif isinstance(step, ConditionalUpdate):
                normalized.append(step)
            else:
                raise UpdateError(f"unsupported transaction step {step!r}")
        self._steps: Tuple[ConditionalUpdate, ...] = tuple(normalized)

    # -- structure --------------------------------------------------------- #
    @property
    def name(self) -> str:
        """The transaction's display name."""
        return self._name

    @property
    def steps(self) -> Tuple[ConditionalUpdate, ...]:
        """The steps, each normalized to a :class:`ConditionalUpdate`."""
        return self._steps

    def __iter__(self) -> Iterator[ConditionalUpdate]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def is_empty(self) -> bool:
        """Return ``True`` for the empty transaction."""
        return not self._steps

    @property
    def is_positive(self) -> bool:
        """Return ``True`` if the transaction is in CSL+ (no negative literals)."""
        return all(step.is_positive for step in self._steps)

    @property
    def is_ground(self) -> bool:
        """Return ``True`` if every step is ground (cached)."""
        ground = self._is_ground
        if ground is None:
            ground = all(step.is_ground for step in self._steps)
            self._is_ground = ground
        return ground

    def variables(self) -> FrozenSet[Variable]:
        """All variables of the transaction."""
        variables = self._variables
        if variables is None:
            result: Set[Variable] = set()
            for step in self._steps:
                result |= step.variables()
            variables = frozenset(result)
            self._variables = variables
        return variables

    def constants(self) -> FrozenSet[Constant]:
        """All constants of the transaction."""
        result: Set[Constant] = set()
        for step in self._steps:
            result |= step.constants()
        return frozenset(result)

    # -- transformation ----------------------------------------------------- #
    def substituted(self, assignment: Assignment) -> "ConditionalTransaction":
        """``T[α]``: instantiate all variables (memoized per assignment)."""
        if not self.variables():
            return self
        cache = self._ground_cache
        if cache is None:
            cache = {}
            self._ground_cache = cache
        ground = cache.get(assignment)
        if ground is None:
            ground = ConditionalTransaction(self._name, (step.substituted(assignment) for step in self._steps))
            cache[assignment] = ground
        return ground

    def validate(self, schema: DatabaseSchema) -> None:
        """Validate every step against ``schema``."""
        for position, step in enumerate(self._steps):
            try:
                step.validate(schema)
            except UpdateError as error:
                raise UpdateError(f"transaction {self._name!r}, step #{position + 1}: {error}") from error

    def apply(self, instance: DatabaseInstance, assignment: Optional[Assignment] = None) -> DatabaseInstance:
        """Execute the transaction on ``instance`` (Definition 4.4)."""
        ground = self if assignment is None else self.substituted(assignment)
        if not ground.is_ground:
            raise UpdateError(
                f"transaction {self._name!r} has unbound variables "
                f"{sorted(v.name for v in ground.variables())}; provide an assignment"
            )
        current = instance
        for step in ground.steps:
            current = step.apply(current)
        return current

    # -- conversion ----------------------------------------------------------- #
    @classmethod
    def from_plain(cls, transaction: Transaction) -> "ConditionalTransaction":
        """View an SL transaction as a (trivially conditional) CSL+ transaction."""
        return cls(transaction.name, transaction.updates)

    # -- identity ----------------------------------------------------------- #
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConditionalTransaction)
            and self._name == other._name
            and self._steps == other._steps
        )

    def __hash__(self) -> int:
        return hash((self._name, self._steps))

    def __repr__(self) -> str:
        return f"ConditionalTransaction({self._name!r}, {len(self._steps)} steps)"

    def describe(self) -> str:
        """A multi-line rendering listing every step."""
        lines = [f"{self._name}:"]
        for step in self._steps:
            lines.append(f"  {step!r}")
        if not self._steps:
            lines.append("  (empty)")
        return "\n".join(lines)


class ConditionalTransactionSchema:
    """A finite set of CSL/CSL+ transactions over one database schema."""

    __slots__ = ("_schema", "_transactions", "_by_name")

    def __init__(
        self,
        schema: DatabaseSchema,
        transactions: Iterable[ConditionalTransaction],
        validate: bool = True,
    ) -> None:
        self._schema = schema
        ordered: Dict[str, ConditionalTransaction] = {}
        for transaction in transactions:
            if transaction.name in ordered:
                raise UpdateError(f"duplicate transaction name {transaction.name!r}")
            ordered[transaction.name] = transaction
        self._transactions: Tuple[ConditionalTransaction, ...] = tuple(ordered.values())
        self._by_name: Dict[str, ConditionalTransaction] = ordered
        if validate:
            for transaction in self._transactions:
                transaction.validate(schema)

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema."""
        return self._schema

    @property
    def transactions(self) -> Tuple[ConditionalTransaction, ...]:
        """The transactions, in declaration order."""
        return self._transactions

    def __iter__(self) -> Iterator[ConditionalTransaction]:
        return iter(self._transactions)

    def __len__(self) -> int:
        return len(self._transactions)

    def __getitem__(self, name: str) -> ConditionalTransaction:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(name) from None

    @property
    def is_positive(self) -> bool:
        """Return ``True`` if every transaction is in CSL+."""
        return all(transaction.is_positive for transaction in self._transactions)

    def constants(self) -> FrozenSet[Constant]:
        """All constants occurring in any transaction."""
        result: Set[Constant] = set()
        for transaction in self._transactions:
            result |= transaction.constants()
        return frozenset(result)

    def names(self) -> Tuple[str, ...]:
        """The transaction names, in declaration order."""
        return tuple(transaction.name for transaction in self._transactions)

    def describe(self) -> str:
        """A multi-line rendering of every transaction."""
        return "\n".join(transaction.describe() for transaction in self._transactions)

    def __repr__(self) -> str:
        flavour = "CSL+" if self.is_positive else "CSL"
        return f"ConditionalTransactionSchema({flavour}, {[t.name for t in self._transactions]})"


__all__ = [
    "Literal",
    "ConditionalUpdate",
    "ConditionalStep",
    "ConditionalTransaction",
    "ConditionalTransactionSchema",
]
