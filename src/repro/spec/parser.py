"""Recursive-descent parser for MCL.

Grammar (lowest precedence first)::

    module      := item* EOF
    item        := "let" IDENT "=" expr
                 | "constraint" IDENT "=" expr
    expr        := implies
    implies     := or_expr ( "implies" expr )?          # right associative
    or_expr     := and_expr ( "or" and_expr )*
    and_expr    := not_expr ( "and" not_expr )*
    not_expr    := "not" not_expr | quantified
    quantified  := "init" quantified
                 | "eventually" quantified
                 | "always" quantified
                 | "never" quantified ( "after" quantified )?
                 | chained
    chained     := choice ( "followed" "by" choice )*
    choice      := sequence ( "|" sequence )*
    sequence    := counted+                              # juxtaposition; "." skipped
    counted     := postfix ( "at" ("most"|"least") NUMBER "times" )?
    postfix     := atom ( "*" | "+" | "?" | "{" NUMBER ("," NUMBER?)? "}" )*
    atom        := ROLESET | "empty" | "0" | "any" | "some" | "epsilon"
                 | "nothing" | "family" IDENT | IDENT | "(" expr ")"

Keywords terminate sequences, so temporal operators inside a sequence need
parentheses (``[A] (eventually [B])``).  Every syntax error is a
:class:`repro.spec.errors.MCLSyntaxError` with a single span naming the
offending token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.spec import ast
from repro.spec.errors import MCLSyntaxError
from repro.spec.lexer import Token, tokenize

#: Keywords that may start an atom (and therefore continue a sequence).
_ATOM_KEYWORDS = frozenset({"empty", "any", "some", "epsilon", "nothing", "family"})


class _Parser:
    def __init__(self, tokens: List[Token], filename: str) -> None:
        self._tokens = tokens
        self._position = 0
        self._filename = filename

    # ------------------------------------------------------------------ #
    # Token-stream plumbing
    # ------------------------------------------------------------------ #
    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "eof":
            self._position += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> MCLSyntaxError:
        token = token if token is not None else self._peek()
        return MCLSyntaxError(f"{message}, found {token.describe()}", token.span, self._filename)

    def _expect_op(self, text: str, context: str) -> Token:
        token = self._peek()
        if not token.is_op(text):
            raise self._error(f"expected '{text}' {context}", token)
        return self._advance()

    def _expect_keyword(self, word: str, context: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected '{word}' {context}", token)
        return self._advance()

    def _expect_ident(self, context: str) -> Token:
        token = self._peek()
        if token.kind != "ident":
            if token.kind == "keyword":
                raise self._error(f"expected a name {context} ('{token.text}' is a reserved word)", token)
            raise self._error(f"expected a name {context}", token)
        return self._advance()

    def _expect_number(self, context: str) -> Tuple[int, Token]:
        token = self._peek()
        if token.kind != "number":
            raise self._error(f"expected a number {context}", token)
        self._advance()
        return int(token.text), token

    # ------------------------------------------------------------------ #
    # Module structure
    # ------------------------------------------------------------------ #
    def parse_module(self) -> ast.Module:
        items: List[ast.Node] = []
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.is_keyword("let"):
                items.append(self._item(ast.LetBinding, "let"))
            elif token.is_keyword("constraint"):
                items.append(self._item(ast.ConstraintDef, "constraint"))
            else:
                raise self._error("expected 'let' or 'constraint' at top level", token)
        span = self._tokens[0].span.merge(self._tokens[-1].span) if items else self._tokens[-1].span
        return ast.Module(span=span, items=tuple(items), filename=self._filename)

    def _item(self, node_type, keyword: str) -> ast.Node:
        opening = self._expect_keyword(keyword, "")
        name = self._expect_ident(f"after '{keyword}'")
        self._expect_op("=", f"after the {keyword} name")
        expr = self.parse_expr()
        return node_type(span=opening.span.merge(expr.span), name=name.text, expr=expr)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def parse_expr(self) -> ast.Node:
        return self._implies()

    def _implies(self) -> ast.Node:
        left = self._or_expr()
        if self._peek().is_keyword("implies"):
            self._advance()
            right = self._implies()
            return ast.Implies(span=left.span.merge(right.span), left=left, right=right)
        return left

    def _or_expr(self) -> ast.Node:
        expr = self._and_expr()
        while self._peek().is_keyword("or"):
            self._advance()
            right = self._and_expr()
            expr = ast.Or(span=expr.span.merge(right.span), left=expr, right=right)
        return expr

    def _and_expr(self) -> ast.Node:
        expr = self._not_expr()
        while self._peek().is_keyword("and"):
            self._advance()
            right = self._not_expr()
            expr = ast.And(span=expr.span.merge(right.span), left=expr, right=right)
        return expr

    def _not_expr(self) -> ast.Node:
        token = self._peek()
        if token.is_keyword("not"):
            self._advance()
            operand = self._not_expr()
            return ast.Not(span=token.span.merge(operand.span), operand=operand)
        return self._quantified()

    def _quantified(self) -> ast.Node:
        token = self._peek()
        if token.is_keyword("init"):
            self._advance()
            operand = self._quantified()
            return ast.Init(span=token.span.merge(operand.span), operand=operand)
        if token.is_keyword("eventually"):
            self._advance()
            operand = self._quantified()
            return ast.Eventually(span=token.span.merge(operand.span), operand=operand)
        if token.is_keyword("always"):
            self._advance()
            operand = self._quantified()
            return ast.Always(span=token.span.merge(operand.span), operand=operand)
        if token.is_keyword("never"):
            self._advance()
            operand = self._quantified()
            if self._peek().is_keyword("after"):
                self._advance()
                trigger = self._quantified()
                return ast.NeverAfter(
                    span=token.span.merge(trigger.span), forbidden=operand, trigger=trigger
                )
            return ast.Never(span=token.span.merge(operand.span), operand=operand)
        return self._chained()

    def _chained(self) -> ast.Node:
        expr = self._choice()
        while self._peek().is_keyword("followed"):
            self._advance()
            self._expect_keyword("by", "after 'followed'")
            right = self._choice()
            expr = ast.FollowedBy(span=expr.span.merge(right.span), first=expr, then=right)
        return expr

    def _choice(self) -> ast.Node:
        first = self._sequence()
        alternatives = [first]
        while self._peek().is_op("|"):
            self._advance()
            alternatives.append(self._sequence())
        if len(alternatives) == 1:
            return first
        span = alternatives[0].span.merge(alternatives[-1].span)
        return ast.Choice(span=span, alternatives=tuple(alternatives))

    def _starts_atom(self, token: Token) -> bool:
        if token.kind in ("roleset", "ident", "number"):
            return True
        if token.kind == "keyword":
            return token.text in _ATOM_KEYWORDS
        return token.is_op("(") or token.is_op(".")

    def _sequence(self) -> ast.Node:
        parts: List[ast.Node] = []
        while self._starts_atom(self._peek()):
            if self._peek().is_op("."):
                self._advance()
                continue
            parts.append(self._counted())
        if not parts:
            raise self._error("expected a pattern expression")
        if len(parts) == 1:
            return parts[0]
        span = parts[0].span.merge(parts[-1].span)
        return ast.Sequence(span=span, parts=tuple(parts))

    def _counted(self) -> ast.Node:
        expr = self._postfix()
        if self._peek().is_keyword("at"):
            self._advance()
            token = self._peek()
            if token.is_keyword("most") or token.is_keyword("least"):
                comparison = self._advance().text
            else:
                raise self._error("expected 'most' or 'least' after 'at'", token)
            count, _ = self._expect_number(f"after 'at {comparison}'")
            closing = self._expect_keyword("times", f"after 'at {comparison} {count}'")
            return ast.Count(
                span=expr.span.merge(closing.span),
                operand=expr,
                comparison=comparison,
                count=count,
            )
        return expr

    def _postfix(self) -> ast.Node:
        expr = self._atom()
        while True:
            token = self._peek()
            if token.is_op("*"):
                self._advance()
                expr = ast.Repeat(span=expr.span.merge(token.span), operand=expr, minimum=0, maximum=None)
            elif token.is_op("+"):
                self._advance()
                expr = ast.Repeat(span=expr.span.merge(token.span), operand=expr, minimum=1, maximum=None)
            elif token.is_op("?"):
                self._advance()
                expr = ast.Repeat(span=expr.span.merge(token.span), operand=expr, minimum=0, maximum=1)
            elif token.is_op("{"):
                expr = self._bounded_repeat(expr)
            else:
                return expr

    def _bounded_repeat(self, operand: ast.Node) -> ast.Node:
        self._expect_op("{", "to open a repetition bound")
        minimum, min_token = self._expect_number("as the repetition lower bound")
        maximum: Optional[int] = minimum
        if self._peek().is_op(","):
            self._advance()
            if self._peek().kind == "number":
                maximum, _ = self._expect_number("as the repetition upper bound")
            else:
                maximum = None
        closing = self._expect_op("}", "to close the repetition bound")
        if maximum is not None and maximum < minimum:
            raise MCLSyntaxError(
                f"repetition bound {{{minimum},{maximum}}} has upper bound below lower bound",
                min_token.span.merge(closing.span),
                self._filename,
            )
        return ast.Repeat(
            span=operand.span.merge(closing.span), operand=operand, minimum=minimum, maximum=maximum
        )

    def _atom(self) -> ast.Node:
        token = self._peek()
        if token.kind == "roleset":
            self._advance()
            if not token.classes:
                return ast.EmptyLiteral(span=token.span)
            return ast.RoleLiteral(span=token.span, classes=token.classes)
        if token.kind == "number":
            self._advance()
            if token.text == "0":
                return ast.EmptyLiteral(span=token.span)
            raise self._error("a bare number is not a pattern (only '0' abbreviates 'empty')", token)
        if token.kind == "keyword":
            if token.text == "empty":
                self._advance()
                return ast.EmptyLiteral(span=token.span)
            if token.text == "any":
                self._advance()
                return ast.AnySymbol(span=token.span)
            if token.text == "some":
                self._advance()
                return ast.SomeSymbol(span=token.span)
            if token.text == "epsilon":
                self._advance()
                return ast.EpsilonLiteral(span=token.span)
            if token.text == "nothing":
                self._advance()
                return ast.NothingLiteral(span=token.span)
            if token.text == "family":
                self._advance()
                kind = self._expect_ident("after 'family'")
                return ast.FamilyPrimitive(span=token.span.merge(kind.span), kind=kind.text)
            raise self._error("expected a pattern expression", token)
        if token.kind == "ident":
            self._advance()
            return ast.NameRef(span=token.span, name=token.text)
        if token.is_op("("):
            self._advance()
            inner = self.parse_expr()
            self._expect_op(")", "to close the parenthesized expression")
            return inner
        raise self._error("expected a pattern expression", token)


def parse_mcl(text: str, filename: str = "<mcl>") -> ast.Module:
    """Parse MCL source text into a :class:`repro.spec.ast.Module`."""
    return _Parser(tokenize(text, filename), filename).parse_module()


def parse_expression(text: str, filename: str = "<mcl>") -> ast.Node:
    """Parse a single MCL expression (no ``let``/``constraint`` wrapper)."""
    parser = _Parser(tokenize(text, filename), filename)
    expr = parser.parse_expr()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise MCLSyntaxError(
            f"unexpected trailing input after the expression: {trailing.describe()}",
            trailing.span,
            filename,
        )
    return expr


__all__ = ["parse_mcl", "parse_expression"]
