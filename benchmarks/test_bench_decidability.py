"""E11 + E12 + E19: decision procedures (Corollary 3.3), bounded enumeration (Theorem 4.2),
and the cost of the regular-language decisions as expressions grow."""

from repro.core.inventory import MigrationInventory
from repro.core.satisfiability import check_all_kinds
from repro.core.simulation import explore_patterns, observed_within
from repro.core.sl_analysis import SLMigrationAnalysis
from repro.formal import decision, operations
from repro.workloads import banking, generators, university


def test_e11_satisfaction_and_generation_decisions(benchmark, run_once):
    analysis = SLMigrationAnalysis(banking.transactions())
    analysis.pattern_family("all")

    def decide():
        good = check_all_kinds(analysis, banking.checking_role_inventory())
        bad = check_all_kinds(analysis, banking.no_downgrade_inventory())
        return (
            all(v.satisfies for v in good.values()),
            any(v.satisfies for v in bad.values()),
        )

    good_ok, bad_any = run_once(benchmark, decide)
    print("\n[E11] banking satisfies 'always a checking role':", good_ok,
          "| satisfies 'never downgraded':", bad_any)
    assert good_ok and not bad_any


def test_e12_bounded_enumeration_agrees_with_analysis(benchmark, run_once):
    analysis = SLMigrationAnalysis(university.transactions())
    families = analysis.pattern_families()

    def enumerate_and_check():
        observation = explore_patterns(university.transactions(), max_depth=3, extra_values=2)
        agreement = {
            kind: observed_within(observation, families[kind], kind)[0] for kind in families
        }
        return agreement, observation.runs_explored

    agreement, runs = run_once(benchmark, enumerate_and_check)
    print(f"\n[E12] simulation ⊆ analysis over {runs} runs:", agreement)
    assert all(agreement.values())


def test_e19_containment_cost_scales_with_expression_size(benchmark, run_once):
    schema = generators.random_schema(seed=11, classes=4)
    small = generators.random_role_set_regex(schema, seed=1, size=4)
    large = generators.random_role_set_regex(schema, seed=2, size=10)

    def containments():
        small_nfa = small.to_nfa()
        large_nfa = large.to_nfa()
        merged = operations.union(small_nfa, large_nfa)
        return (
            decision.is_contained_in(small_nfa, merged),
            decision.is_contained_in(large_nfa, merged),
            decision.are_equivalent(merged, operations.union(large_nfa, small_nfa)),
        )

    results = run_once(benchmark, containments)
    print("\n[E19] containment/equivalence over random role-set expressions:", results)
    assert all(results)


def test_e19_inventory_equivalence(benchmark):
    left = MigrationInventory.from_text("([S]([G][S])*)?", university.SYMBOLS, prefix_close=True)
    right = MigrationInventory.from_text("([S][G])* [S]?", university.SYMBOLS, prefix_close=True)

    result = benchmark(left.equals, right)
    assert result
