"""Operational semantics of SL updates and transactions (Definition 2.5).

Every ground atomic update denotes a total mapping from instances to
instances; a ground transaction denotes the composition of its updates; a
parameterized transaction maps an assignment to such a mapping.  The
functions here implement exactly the equations of Definition 2.5, including
the corner cases the paper calls out:

* an unsatisfiable condition (``E``) turns the update into a no-op;
* ``create`` always allocates a fresh identifier (unlike relational insert);
* ``delete``/``generalize`` remove objects from the named class *and all of
  its descendants*, and drop the attribute values introduced at those
  classes;
* ``specialize`` leaves objects that are already members of the target class
  untouched, and adds new members to the target class and all of its
  ancestors.

Instead of rebuilding the full attribute dict per update (the seed-era
implementation), every update is first described as an
:class:`repro.model.store.InstanceDelta` and then applied through the
persistent store, so each application costs O(touched values), not
O(instance size).  :func:`compute_update_delta` exposes the delta itself;
:func:`transaction_delta` batches a whole transaction into one delta.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.language.transactions import Transaction
from repro.language.updates import (
    AtomicUpdate,
    Create,
    Delete,
    Generalize,
    Modify,
    Specialize,
)
from repro.model.conditions import Condition
from repro.model.errors import UpdateError
from repro.model.instance import DatabaseInstance
from repro.model.schema import AttributeName, ClassName
from repro.model.store import InstanceDelta
from repro.model.values import Assignment, Constant, ObjectId

#: The identity delta shared by every no-op update.
_IDENTITY = InstanceDelta()


def _condition_values(condition: Condition) -> Dict[AttributeName, Constant]:
    """Extract the attribute assignments of an all-equalities ground condition."""
    values: Dict[AttributeName, Constant] = {}
    for atom in condition:
        if atom.is_equality:
            values[atom.attribute] = atom.term
    return values


def _create_delta(update: Create, instance: DatabaseInstance) -> InstanceDelta:
    if not update.values.is_satisfiable():
        return _IDENTITY
    new_object = instance.next_object
    value_sets = {
        (new_object, attribute): constant
        for attribute, constant in _condition_values(update.values).items()
    }
    return InstanceDelta.raw(
        extent_add={update.class_name: frozenset((new_object,))},
        value_sets=value_sets,
        next_object=new_object.successor(),
    )


def _removal_delta(
    instance: DatabaseInstance,
    class_name: ClassName,
    objects: Iterable[ObjectId],
    drop_all_values: bool,
) -> InstanceDelta:
    """Shared removal logic for ``delete`` and ``generalize``.

    Removes ``objects`` from ``class_name`` and all of its isa-descendants.
    With ``drop_all_values`` the objects' values for *every* attribute are
    dropped (delete); otherwise only values for attributes introduced at the
    affected classes are dropped (generalize).
    """
    schema = instance.schema
    doomed = frozenset(objects)
    if not doomed:
        return _IDENTITY
    affected_classes = schema.descendants(class_name)
    extent_remove = {
        name: doomed for name in affected_classes if instance.objects_in(name) & doomed
    }
    if drop_all_values:
        return InstanceDelta.raw(extent_remove=extent_remove, dropped_objects=doomed)
    dropped_attributes: Set[AttributeName] = set()
    for name in affected_classes:
        dropped_attributes |= schema.attributes_of(name)
    value_dels = [
        (obj, attribute)
        for obj in doomed
        for attribute in instance.value_row(obj).keys() & dropped_attributes
    ]
    return InstanceDelta.raw(extent_remove=extent_remove, value_dels=value_dels)


def _delete_delta(update: Delete, instance: DatabaseInstance) -> InstanceDelta:
    if not update.selection.is_satisfiable():
        return _IDENTITY
    selected = instance.satisfying_objects(update.selection, update.class_name)
    return _removal_delta(instance, update.class_name, selected, drop_all_values=True)


def _modify_delta(update: Modify, instance: DatabaseInstance) -> InstanceDelta:
    if not update.selection.is_satisfiable() or not update.changes.is_satisfiable():
        return _IDENTITY
    selected = instance.satisfying_objects(update.selection, update.class_name)
    if not selected:
        return _IDENTITY
    changed_attributes = update.changes.referenced_attributes()
    new_values = _condition_values(update.changes)
    cleared = changed_attributes - frozenset(new_values)
    value_sets = {}
    value_dels = []
    for obj in selected:
        for attribute in cleared:
            value_dels.append((obj, attribute))
        for attribute, constant in new_values.items():
            value_sets[(obj, attribute)] = constant
    return InstanceDelta.raw(value_sets=value_sets, value_dels=value_dels)


def _generalize_delta(update: Generalize, instance: DatabaseInstance) -> InstanceDelta:
    if not update.selection.is_satisfiable():
        return _IDENTITY
    selected = instance.satisfying_objects(update.selection, update.class_name)
    return _removal_delta(instance, update.class_name, selected, drop_all_values=False)


def _specialize_delta(update: Specialize, instance: DatabaseInstance) -> InstanceDelta:
    if not update.selection.is_satisfiable() or not update.new_values.is_satisfiable():
        return _IDENTITY
    schema = instance.schema
    candidates = instance.satisfying_objects(update.selection, update.parent_class)
    migrating = candidates - instance.objects_in(update.child_class)
    if not migrating:
        return _IDENTITY
    extent_add = {name: migrating for name in schema.ancestors(update.child_class)}
    new_values = _condition_values(update.new_values)
    cleared = update.new_values.referenced_attributes() - frozenset(new_values)
    value_sets = {}
    value_dels = []
    for obj in migrating:
        for attribute in cleared:
            value_dels.append((obj, attribute))
        for attribute, constant in new_values.items():
            value_sets[(obj, attribute)] = constant
    return InstanceDelta.raw(extent_add=extent_add, value_sets=value_sets, value_dels=value_dels)


_DISPATCH = {
    Create: _create_delta,
    Delete: _delete_delta,
    Modify: _modify_delta,
    Generalize: _generalize_delta,
    Specialize: _specialize_delta,
}


def compute_update_delta(update: AtomicUpdate, instance: DatabaseInstance) -> InstanceDelta:
    """The :class:`InstanceDelta` one *ground* atomic update causes on ``instance``.

    Raises :class:`UpdateError` if the update still contains variables.
    """
    if not update.is_ground:
        raise UpdateError(f"cannot execute the non-ground update {update!r}; bind its variables first")
    handler = _DISPATCH.get(type(update))
    if handler is None:
        raise UpdateError(f"unknown update type {type(update).__name__}")
    return handler(update, instance)


def apply_update(update: AtomicUpdate, instance: DatabaseInstance) -> DatabaseInstance:
    """Apply one *ground* atomic update to ``instance``.

    Raises :class:`UpdateError` if the update still contains variables.
    """
    return instance.apply_delta(compute_update_delta(update, instance))


def apply_transaction(
    transaction: Transaction,
    instance: DatabaseInstance,
    assignment: Optional[Assignment] = None,
) -> DatabaseInstance:
    """Apply a transaction (ground, or parameterized plus an assignment).

    ``[T[α]](d)``: the updates are executed in sequence; the empty
    transaction is the identity.
    """
    ground = transaction if assignment is None else transaction.substituted(assignment)
    if not ground.is_ground:
        raise UpdateError(
            f"transaction {transaction.name!r} has unbound variables "
            f"{sorted(v.name for v in ground.variables())}; provide an assignment"
        )
    current = instance
    for update in ground.updates:
        current = current.apply_delta(compute_update_delta(update, current))
    return current


def transaction_delta(
    transaction: Transaction,
    instance: DatabaseInstance,
    assignment: Optional[Assignment] = None,
) -> InstanceDelta:
    """The single batched delta a whole transaction causes on ``instance``.

    The updates are still evaluated sequentially (later updates observe
    earlier effects, exactly as in Definition 2.5); the result folds the
    chain into one :class:`InstanceDelta` from ``instance`` to the final
    state, which callers can store or replay far more cheaply than the full
    final instance.
    """
    result = apply_transaction(transaction, instance, assignment)
    return instance.diff(result)


def run_sequence(
    instance: DatabaseInstance,
    steps: Sequence[Tuple[Transaction, Optional[Assignment]]],
) -> Tuple[DatabaseInstance, Tuple[DatabaseInstance, ...]]:
    """Apply a sequence of (transaction, assignment) steps.

    Returns the final instance and the tuple of all intermediate instances
    ``d_1, ..., d_n`` (excluding the starting one), which is exactly the data
    from which migration patterns are read off (Definition 3.4).
    """
    current = instance
    trace = []
    for transaction, assignment in steps:
        current = apply_transaction(transaction, current, assignment)
        trace.append(current)
    return current, tuple(trace)


__all__ = [
    "apply_update",
    "apply_transaction",
    "compute_update_delta",
    "transaction_delta",
    "run_sequence",
]
