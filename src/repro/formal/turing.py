"""A single-tape Turing machine simulator.

Theorem 4.3 of the paper constructs, for every recursively enumerable
inventory ``L``, a CSL+ transaction schema whose migration patterns are
exactly ``Init(L · 0*)`` padded with empty role sets, by simulating a Turing
machine accepting ``L`` inside the database (the chain encoded in class
``S``).  This module provides the Turing machines being simulated:

* deterministic or nondeterministic transition relations,
* a right-infinite tape,
* step-bounded execution (the constructions are exercised with explicit
  budgets because, of course, halting is undecidable),
* machines that *do not erase their input* (the construction in the paper
  assumes this; :meth:`TuringMachine.non_erasing_equivalent` provides the
  standard input-duplication wrapper when needed by callers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Symbol = Hashable
State = Hashable

#: Head movements.
LEFT = "L"
RIGHT = "R"
STAY = "S"

_MOVES = (LEFT, RIGHT, STAY)


@dataclass(frozen=True)
class TMTransition:
    """One transition: in ``state`` reading ``read``, write/move/change state."""

    state: State
    read: Symbol
    next_state: State
    write: Symbol
    move: str

    def __post_init__(self) -> None:
        if self.move not in _MOVES:
            raise ValueError(f"move must be one of {_MOVES}, got {self.move!r}")


@dataclass(frozen=True)
class TMConfiguration:
    """A configuration: tape contents, head position, and control state."""

    state: State
    tape: Tuple[Symbol, ...]
    head: int

    def reading(self, blank: Symbol) -> Symbol:
        """The symbol currently under the head."""
        if 0 <= self.head < len(self.tape):
            return self.tape[self.head]
        return blank

    def written(self, position: int, blank: Symbol) -> Symbol:
        """The symbol at ``position`` (blank beyond the written portion)."""
        if 0 <= position < len(self.tape):
            return self.tape[position]
        return blank

    def pretty(self, blank: Symbol) -> str:
        """A one-line rendering used in logs and reports."""
        cells = []
        for index, symbol in enumerate(self.tape):
            text = str(symbol)
            cells.append(f"[{text}]" if index == self.head else f" {text} ")
        if self.head >= len(self.tape):
            cells.append(f"[{blank}]")
        return f"{self.state}: " + "".join(cells)


class TuringMachine:
    """A (possibly nondeterministic) one-tape Turing machine.

    The tape is right-infinite; moving left of cell 0 leaves the head at
    cell 0 (the standard convention for right-infinite tapes).  Acceptance is
    by reaching ``accept_state``; the machine may also halt by having no
    applicable transition, which is *not* acceptance.
    """

    def __init__(
        self,
        states: Iterable[State],
        input_alphabet: Iterable[Symbol],
        tape_alphabet: Iterable[Symbol],
        blank: Symbol,
        transitions: Iterable[TMTransition],
        initial_state: State,
        accept_state: State,
        reject_state: Optional[State] = None,
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        self.input_alphabet: FrozenSet[Symbol] = frozenset(input_alphabet)
        self.tape_alphabet: FrozenSet[Symbol] = frozenset(tape_alphabet) | {blank}
        self.blank = blank
        self.initial_state = initial_state
        self.accept_state = accept_state
        self.reject_state = reject_state
        if blank in self.input_alphabet:
            raise ValueError("the blank symbol may not be part of the input alphabet")
        if not self.input_alphabet <= self.tape_alphabet:
            raise ValueError("the input alphabet must be contained in the tape alphabet")
        for required in (initial_state, accept_state):
            if required not in self.states:
                raise ValueError(f"{required!r} is not a state")
        if reject_state is not None and reject_state not in self.states:
            raise ValueError(f"{reject_state!r} is not a state")
        self._transitions: Dict[Tuple[State, Symbol], List[TMTransition]] = {}
        for transition in transitions:
            if transition.state not in self.states or transition.next_state not in self.states:
                raise ValueError(f"transition uses unknown states: {transition!r}")
            if transition.read not in self.tape_alphabet or transition.write not in self.tape_alphabet:
                raise ValueError(f"transition uses unknown symbols: {transition!r}")
            self._transitions.setdefault((transition.state, transition.read), []).append(transition)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def transitions(self) -> Tuple[TMTransition, ...]:
        """All transitions, in a deterministic order."""
        result: List[TMTransition] = []
        for key in sorted(self._transitions, key=repr):
            result.extend(self._transitions[key])
        return tuple(result)

    def transitions_from(self, state: State, read: Symbol) -> Tuple[TMTransition, ...]:
        """Transitions applicable in ``state`` when reading ``read``."""
        return tuple(self._transitions.get((state, read), ()))

    def is_deterministic(self) -> bool:
        """Return ``True`` if at most one transition applies per (state, symbol)."""
        return all(len(options) <= 1 for options in self._transitions.values())

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def initial_configuration(self, word: Sequence[Symbol]) -> TMConfiguration:
        """The starting configuration on input ``word``."""
        for symbol in word:
            if symbol not in self.input_alphabet:
                raise ValueError(f"{symbol!r} is not an input symbol")
        return TMConfiguration(self.initial_state, tuple(word), 0)

    def step(self, configuration: TMConfiguration) -> List[TMConfiguration]:
        """All successor configurations (empty if the machine is stuck)."""
        read = configuration.reading(self.blank)
        successors: List[TMConfiguration] = []
        for transition in self._transitions.get((configuration.state, read), ()):  # pragma: no branch
            tape = list(configuration.tape)
            while len(tape) <= configuration.head:
                tape.append(self.blank)
            tape[configuration.head] = transition.write
            head = configuration.head
            if transition.move == RIGHT:
                head += 1
            elif transition.move == LEFT:
                head = max(0, head - 1)
            successors.append(TMConfiguration(transition.next_state, tuple(tape), head))
        return successors

    def run(
        self,
        word: Sequence[Symbol],
        max_steps: int = 10_000,
    ) -> Tuple[str, Optional[TMConfiguration], int]:
        """Run the machine on ``word`` with a step budget.

        Returns a triple ``(verdict, configuration, steps)`` where ``verdict``
        is ``"accept"``, ``"reject"`` (explicit reject state or no applicable
        transition), or ``"timeout"``.  Nondeterministic machines are explored
        breadth-first, counting explored configurations against the budget.
        """
        start = self.initial_configuration(word)
        frontier: List[TMConfiguration] = [start]
        seen: Set[TMConfiguration] = {start}
        steps = 0
        while frontier and steps < max_steps:
            next_frontier: List[TMConfiguration] = []
            for configuration in frontier:
                if configuration.state == self.accept_state:
                    return ("accept", configuration, steps)
                if self.reject_state is not None and configuration.state == self.reject_state:
                    continue
                successors = self.step(configuration)
                for successor in successors:
                    if successor not in seen:
                        seen.add(successor)
                        next_frontier.append(successor)
                steps += 1
                if steps >= max_steps:
                    break
            if not next_frontier:
                return ("reject", None, steps)
            frontier = next_frontier
        for configuration in frontier:
            if configuration.state == self.accept_state:
                return ("accept", configuration, steps)
        return ("timeout", None, steps)

    def accepts(self, word: Sequence[Symbol], max_steps: int = 10_000) -> bool:
        """Step-bounded acceptance test."""
        verdict, _configuration, _steps = self.run(word, max_steps=max_steps)
        return verdict == "accept"

    def accepted_words(
        self,
        alphabet: Optional[Iterable[Symbol]] = None,
        max_length: int = 4,
        max_steps: int = 10_000,
    ) -> Iterator[Tuple[Symbol, ...]]:
        """Enumerate accepted words up to ``max_length`` (step-bounded)."""
        import itertools

        letters = sorted(alphabet if alphabet is not None else self.input_alphabet, key=repr)
        for length in range(max_length + 1):
            for word in itertools.product(letters, repeat=length):
                if self.accepts(word, max_steps=max_steps):
                    yield word

    # ------------------------------------------------------------------ #
    # Constructions used by the paper
    # ------------------------------------------------------------------ #
    def non_erasing_equivalent(self) -> "TuringMachine":
        """A machine accepting the same language that never erases its input.

        The paper's Theorem 4.3 proof assumes the machine does not erase the
        input word ("If not, it is easy to construct another Turing machine
        M' which duplicates the input word and then simulates M on the right
        copy").  For the machines bundled with this package the property is
        arranged by construction; this helper implements the generic wrapper
        by shifting the simulation to a disjoint copy of the tape alphabet so
        the original input cells are never overwritten with different
        *input* symbols.  It is primarily useful for experimentation.
        """
        # Shadow tape symbols: ("shadow", a).  The wrapper first copies the
        # input to shadow symbols appended after a separator, then simulates
        # the original machine over shadow symbols only.
        separator = ("shadow", "#")
        shadow = {symbol: ("shadow", symbol) for symbol in self.tape_alphabet}
        states: Set[State] = {("copy", "scan"), ("copy", "back")}
        transitions: List[TMTransition] = []
        # Copying is implemented with one marker pass per input cell; to keep
        # this helper simple (it is not on the critical path of the
        # reproduction) we only support inputs over the input alphabet and
        # bounce between the original prefix and the shadow suffix.
        # Mark phase states: ("mark", a) carries the symbol being copied.
        for symbol in self.input_alphabet:
            states.add(("carry", symbol))
            states.add(("return", symbol))
        marked = {symbol: ("marked", symbol) for symbol in self.input_alphabet}

        tape_alphabet: Set[Symbol] = set(self.tape_alphabet) | set(shadow.values()) | {separator}
        tape_alphabet |= set(marked.values())

        scan = ("copy", "scan")
        back = ("copy", "back")
        # Scan: find the first unmarked input symbol; mark it and carry right.
        for symbol in self.input_alphabet:
            transitions.append(TMTransition(scan, symbol, ("carry", symbol), marked[symbol], RIGHT))
            transitions.append(TMTransition(back, marked[symbol], back, marked[symbol], LEFT))
            transitions.append(TMTransition(back, symbol, scan, symbol, STAY))
        for symbol in self.input_alphabet:
            transitions.append(TMTransition(scan, marked[symbol], scan, marked[symbol], RIGHT))
        # Carry: move right over everything until a blank, deposit the shadow copy.
        for carried in self.input_alphabet:
            carry = ("carry", carried)
            for passed in list(marked.values()) + [separator] + list(shadow.values()) + list(self.input_alphabet):
                transitions.append(TMTransition(carry, passed, carry, passed, RIGHT))
            transitions.append(TMTransition(carry, self.blank, back, shadow[carried], LEFT))
        # Back: return to the leftmost unmarked symbol.
        for passed in [separator] + list(shadow.values()):
            transitions.append(TMTransition(back, passed, back, passed, LEFT))
        # When scan reaches the separator-less boundary (a blank or shadow
        # cell) all input has been copied: write the separator and start the
        # simulation of the original machine positioned on the first shadow cell.
        sim_states = {state: ("sim", state) for state in self.states}
        states |= set(sim_states.values())
        transitions.append(TMTransition(scan, self.blank, sim_states[self.initial_state], separator, RIGHT))
        for shadow_symbol in shadow.values():
            transitions.append(
                TMTransition(scan, shadow_symbol, sim_states[self.initial_state], shadow_symbol, STAY)
            )
        # Simulation over shadow symbols.
        for transition in self.transitions:
            transitions.append(
                TMTransition(
                    sim_states[transition.state],
                    shadow[transition.read],
                    sim_states[transition.next_state],
                    shadow[transition.write],
                    transition.move,
                )
            )
            # Reading a blank beyond the shadow region behaves like reading
            # the shadow blank.
            if transition.read == self.blank:
                transitions.append(
                    TMTransition(
                        sim_states[transition.state],
                        self.blank,
                        sim_states[transition.next_state],
                        shadow[transition.write],
                        transition.move,
                    )
                )
        # Simulation states must not fall off the left edge of the shadow
        # region: treat the separator and original symbols as blanks when read.
        for state in self.states:
            for blocked in list(marked.values()) + [separator]:
                for transition in self.transitions_from(state, self.blank):
                    transitions.append(
                        TMTransition(
                            sim_states[state],
                            blocked,
                            sim_states[transition.next_state],
                            blocked,
                            RIGHT,
                        )
                    )
        return TuringMachine(
            states | {sim_states[self.accept_state]},
            self.input_alphabet,
            tape_alphabet,
            self.blank,
            transitions,
            scan,
            sim_states[self.accept_state],
            None if self.reject_state is None else sim_states.get(self.reject_state),
        )

    # ------------------------------------------------------------------ #
    # Factory machines used throughout tests and benchmarks
    # ------------------------------------------------------------------ #
    @classmethod
    def accepting_regular_sample(cls, symbols: Sequence[Symbol]) -> "TuringMachine":
        """A machine accepting ``symbols[0]+`` (one or more of the first symbol).

        A deliberately small machine used to exercise the Theorem 4.3
        construction with a nontrivial but easily checkable r.e. language.
        """
        if not symbols:
            raise ValueError("need at least one symbol")
        a = symbols[0]
        blank = ("tm", "blank")
        states = {"q0", "q1", "qa"}
        transitions = [
            TMTransition("q0", a, "q1", a, RIGHT),
            TMTransition("q1", a, "q1", a, RIGHT),
            TMTransition("q1", blank, "qa", blank, STAY),
        ]
        return cls(states, set(symbols), set(symbols) | {blank}, blank, transitions, "q0", "qa")

    @classmethod
    def accepting_equal_pairs(cls, first: Symbol, second: Symbol) -> "TuringMachine":
        """A machine accepting ``{ first^n second^n | n >= 1 }``.

        The classic non-regular (context-free) language; used to check that
        the CSL+ constructions go beyond regular inventories.
        """
        blank = ("tm", "blank")
        crossed_a = ("tm", "Xa")
        crossed_b = ("tm", "Xb")
        states = {"q0", "q1", "q2", "q3", "qa"}
        transitions = [
            # Cross off one leading `first`.
            TMTransition("q0", first, "q1", crossed_a, RIGHT),
            # Skip over remaining firsts and crossed seconds.
            TMTransition("q1", first, "q1", first, RIGHT),
            TMTransition("q1", crossed_b, "q1", crossed_b, RIGHT),
            # Cross off a matching `second`.
            TMTransition("q1", second, "q2", crossed_b, LEFT),
            # Walk back to the leftmost uncrossed `first`.
            TMTransition("q2", first, "q2", first, LEFT),
            TMTransition("q2", crossed_b, "q2", crossed_b, LEFT),
            TMTransition("q2", crossed_a, "q0", crossed_a, RIGHT),
            # If everything is crossed, scan right to make sure nothing remains.
            TMTransition("q0", crossed_b, "q3", crossed_b, RIGHT),
            TMTransition("q3", crossed_b, "q3", crossed_b, RIGHT),
            TMTransition("q3", blank, "qa", blank, STAY),
        ]
        return cls(
            states,
            {first, second},
            {first, second, crossed_a, crossed_b, blank},
            blank,
            transitions,
            "q0",
            "qa",
        )

    @classmethod
    def never_halting(cls, *symbols: Symbol) -> "TuringMachine":
        """A machine that never accepts (loops forever); accepts the empty language."""
        if not symbols:
            raise ValueError("need at least one input symbol")
        blank = ("tm", "blank")
        states = {"q0", "qa"}
        transitions = [TMTransition("q0", blank, "q0", blank, RIGHT)]
        for symbol in symbols:
            transitions.append(TMTransition("q0", symbol, "q0", symbol, RIGHT))
        return cls(states, set(symbols), set(symbols) | {blank}, blank, transitions, "q0", "qa")


__all__ = [
    "TuringMachine",
    "TMTransition",
    "TMConfiguration",
    "LEFT",
    "RIGHT",
    "STAY",
]
