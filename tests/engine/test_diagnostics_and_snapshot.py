"""The violation-diagnostics and checkpoint/restore layers.

Covers the two tentpole capabilities end to end:

* ``explain()`` -- fatal-event recovery, minimal shrunk counterexamples
  (1-minimality verified directly), shortest conforming completions, and
  span-anchored MCL clause diagnoses for **every** constraint of **every**
  bundled workload;
* ``snapshot()`` / ``restore_stream()`` -- verdict-identical round trips on
  all five workloads (same engine and fresh-engine restores), wire-format
  validation, fingerprint-based reset on re-registration, trace survival,
  and dict-mode (non-integer id) interners.
"""

from __future__ import annotations

import pytest

from repro.engine import HistoryCheckerEngine, SnapshotError
from repro.engine.diagnostics import is_doomed_word, replay
from repro.engine.snapshot import FORMAT_VERSION, MAGIC
from repro.formal.lazy import containment
from repro.formal.nfa import NFA
from repro.workloads import banking, generators, immigration, phd, three_class, university

WORKLOADS = {
    "banking": banking,
    "university": university,
    "immigration": immigration,
    "phd": phd,
    "three_class": three_class,
}


def _workload_stream(name, module, seed, objects=40):
    """A deterministic interleaved event stream for one workload."""
    if name == "banking":
        return generators.banking_event_stream(seed, objects, noise=0.2)[1]
    if name == "university":
        return generators.university_event_stream(seed, objects, noise=0.2)[1]
    if name == "immigration":
        return generators.immigration_event_stream(seed, objects)[1]
    histories = list(generators.random_histories(module.ROLE_SETS, seed, objects))
    return generators.event_stream(histories, seed + 1)


def _mcl_engine(module):
    engine = HistoryCheckerEngine()
    for constraint_name, constraint in module.mcl_constraints().items():
        engine.add_spec(constraint_name, constraint)
    return engine


def _violating_word(constraint):
    """A shortest word outside the constraint's language (lazy witness)."""
    from repro.formal.lazy import _universe_nfa

    outcome = containment(_universe_nfa(constraint.alphabet), constraint.automaton)
    return outcome.witness


# --------------------------------------------------------------------------- #
# explain(): span-anchored reports for every MCL workload constraint
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_explain_is_span_anchored_for_every_mcl_constraint(workload):
    module = WORKLOADS[workload]
    engine = _mcl_engine(module)
    for name in engine.spec_names():
        constraint = engine.provenance(name)
        assert constraint is not None, name
        witness = _violating_word(constraint)
        assert witness is not None, f"{workload}.{name} accepts every word?"
        violation = engine.explain(name, witness)
        assert violation is not None, (workload, name)
        assert violation.spec == name
        assert violation.history == tuple(witness)
        assert violation.clauses, (workload, name, "no clause provenance")
        for clause in violation.clauses:
            assert clause.line is not None and clause.column is not None
            assert clause.text
        assert any(not clause.satisfied for clause in violation.clauses), (workload, name)
        report = violation.render()
        assert "VIOLATED" in report
        assert name in report


def test_explain_returns_none_for_accepted_histories():
    engine = _mcl_engine(banking)
    histories, _events = generators.banking_event_stream(3, 30, noise=0.0)
    verdicts = engine.check_batch("checking_roles", histories)
    for history, verdict in zip(histories, verdicts):
        violation = engine.explain("checking_roles", history)
        assert (violation is None) == verdict


def test_fatal_index_matches_near_miss_construction():
    engine = _mcl_engine(banking)
    spec = engine.compiled("checking_roles")
    guide_histories, _ = generators.near_miss_banking_stream(17, objects=25, violate_at=6)
    for history in guide_histories:
        violation = engine.explain("checking_roles", history)
        assert violation is not None and violation.doomed
        assert violation.fatal_index == 6
        assert violation.failing_prefix == history[:7]
        assert not is_doomed_word(spec, history[:6])
        assert is_doomed_word(spec, history[:7])


def test_counterexample_is_doomed_and_one_minimal():
    engine = _mcl_engine(banking)
    spec = engine.compiled("checking_roles")
    histories, _ = generators.near_miss_banking_stream(23, objects=10, violate_at=5)
    for history in histories:
        violation = engine.explain("checking_roles", history)
        word = violation.counterexample
        assert is_doomed_word(spec, word)
        for index in range(len(word)):
            shrunk = word[:index] + word[index + 1 :]
            assert not is_doomed_word(spec, shrunk), (word, index)


def test_completion_is_a_conforming_extension():
    engine = HistoryCheckerEngine()
    engine.add_spec(
        "exact",
        "constraint exact = [INTEREST_CHECKING] [REGULAR_CHECKING]",
        schema=banking.schema(),
    )
    spec = engine.compiled("exact")
    history = (banking.ROLE_INTEREST,)
    violation = engine.explain("exact", history)
    assert violation is not None and not violation.doomed
    assert violation.completion == (banking.ROLE_REGULAR,)
    assert spec.accepts(history + violation.completion)
    assert violation.explored_states > 0
    assert "completion" in violation.render()


def test_empty_language_spec_reports_unsatisfiable():
    engine = HistoryCheckerEngine()
    engine.add_spec("impossible", NFA.empty_language(banking.ROLE_SETS))
    violation = engine.explain("impossible", (banking.ROLE_INTEREST,))
    assert violation.doomed and violation.fatal_index == -1
    assert violation.failing_prefix == ()
    assert violation.counterexample == ()
    assert "language is empty" in violation.render()


def test_replay_reports_alien_symbols_as_fatal():
    engine = _mcl_engine(banking)
    spec = engine.compiled("checking_roles")
    alien = frozenset({"NOT_A_BANKING_CLASS"})
    _state, fatal = replay(spec, (banking.ROLE_INTEREST, alien, banking.ROLE_REGULAR))
    assert fatal == 1


def test_check_batch_explain_aligns_with_verdicts():
    engine = _mcl_engine(banking)
    histories, _events = generators.banking_event_stream(5, 30, noise=0.4)
    verdicts, violations = engine.check_batch("checking_roles", histories, explain=True)
    assert verdicts == engine.check_batch("checking_roles", histories)
    failing = [index for index, verdict in enumerate(verdicts) if not verdict]
    assert [violation.object_id for violation in violations] == failing
    for violation in violations:
        assert violation.history == tuple(histories[violation.object_id])


def test_stream_explain_uses_recorded_traces():
    engine = _mcl_engine(banking)
    histories, events = generators.near_miss_banking_stream(31, objects=12, violate_at=3)
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    assert stream.recording
    for index, history in enumerate(histories):
        assert stream.history(index) == history
    reports = stream.explain_all("checking_roles")
    assert len(reports) == len(histories)  # every near-miss object violates
    assert all(report.fatal_index == 3 for report in reports)


def test_stream_explain_without_recording_needs_history():
    engine = _mcl_engine(banking)
    histories, events = generators.banking_event_stream(7, 10, noise=0.5)
    stream = engine.open_stream()
    stream.feed_events(events)
    assert not stream.recording
    with pytest.raises(ValueError):
        stream.history(0)
    with pytest.raises(ValueError):
        stream.explain("checking_roles", 0)
    with pytest.raises(KeyError):
        stream.explain("unknown_spec", 0, history=histories[0])
    explicit = stream.explain("checking_roles", 0, history=histories[0])
    assert (explicit is None) == stream.verdict("checking_roles", 0)


# --------------------------------------------------------------------------- #
# snapshot()/restore_stream(): verdict-identical on all five workloads
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_snapshot_round_trip_is_verdict_identical(workload):
    module = WORKLOADS[workload]
    events = _workload_stream(workload, module, seed=101)
    engine = _mcl_engine(module)

    control = engine.open_stream(record=True)
    control.feed_events(events)

    # Snapshot mid-stream, restore into the same engine and into a fresh
    # engine (the process-restart simulation), finish the stream on both.
    half = len(events) // 2
    stream = engine.open_stream(record=True)
    stream.feed_events(events[:half])
    blob = stream.snapshot()

    restored = engine.restore_stream(blob)
    restored.feed_events(events[half:])
    assert restored.reset_on_restore == ()
    assert restored.all_verdicts() == control.all_verdicts()
    assert restored.events_seen == control.events_seen

    fresh = _mcl_engine(module)
    migrated = fresh.restore_stream(blob)
    migrated.feed_events(events[half:])
    assert migrated.reset_on_restore == ()
    assert migrated.all_verdicts() == control.all_verdicts()


def test_snapshot_preserves_traces_and_objects():
    engine = _mcl_engine(banking)
    _histories, events = generators.banking_event_stream(13, 20, noise=0.3)
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    blob = stream.snapshot()
    restored = _mcl_engine(banking).restore_stream(blob)
    assert restored.recording
    assert restored.objects() == stream.objects()
    for object_id in stream.objects():
        assert restored.history(object_id) == stream.history(object_id)


def test_snapshot_handles_string_object_ids():
    engine = _mcl_engine(banking)
    histories, events = generators.banking_event_stream(19, 15, noise=0.3)
    named_events = [(f"acct-{object_id}", symbol) for object_id, symbol in events]
    stream = engine.open_stream(record=True)
    stream.feed_events(named_events)
    restored = engine.restore_stream(stream.snapshot())
    assert restored.all_verdicts() == stream.all_verdicts()
    assert restored.history("acct-0") == stream.history("acct-0")


def test_snapshot_of_zero_spec_stream_keeps_event_count():
    engine = HistoryCheckerEngine()
    stream = engine.open_stream(())
    stream.feed_events([(0, banking.ROLE_INTEREST), (1, banking.ROLE_REGULAR)])
    restored = engine.restore_stream(stream.snapshot())
    assert restored.events_seen == 2
    assert restored.spec_names == ()


def test_restore_resets_reregistered_specs_only():
    engine = _mcl_engine(banking)
    _histories, events = generators.banking_event_stream(29, 20, noise=0.3)
    stream = engine.open_stream()
    stream.feed_events(events)
    before = stream.all_verdicts()
    blob = stream.snapshot()

    # Replace no_downgrade with a different language; checking_roles stays.
    engine.add_spec("no_downgrade", banking.checking_role_inventory())
    restored = engine.restore_stream(blob)
    assert restored.reset_on_restore == ("no_downgrade",)
    assert restored.verdicts("checking_roles") == before["checking_roles"]
    # The reset spec restarts: every object reads as freshly-initial.
    initial_ok = engine.compiled("no_downgrade").is_accepting(
        engine.compiled("no_downgrade").initial
    )
    assert all(verdict == initial_ok for verdict in restored.verdicts("no_downgrade").values())


def test_stream_explain_agrees_with_verdict_after_reset():
    """After a spec reset, explain judges only post-reset events.

    The recorded trace keeps the whole stream, but a re-registered spec's
    cursor restarts -- diagnostics must not report a doomed violation for
    events the verdict machinery has forgotten.
    """
    engine = _mcl_engine(banking)
    alien = frozenset({"NOT_A_BANKING_CLASS"})
    stream = engine.open_stream(record=True)
    stream.feed_events([(0, alien)])
    assert not stream.verdict("checking_roles", 0)
    # Re-register under the same name: the cursor restarts on next touch.
    engine.add_spec("checking_roles", banking.checking_role_inventory())
    assert stream.verdict("checking_roles", 0)
    assert stream.explain("checking_roles", 0) is None
    # Post-reset events are judged again -- and against post-reset history.
    stream.feed_events([(0, banking.ROLE_ACCOUNT)])
    violation = stream.explain("checking_roles", 0)
    assert violation is not None and violation.history == (banking.ROLE_ACCOUNT,)
    # The full trace is still available for forensics.
    assert stream.history(0) == (alien, banking.ROLE_ACCOUNT)


def test_restored_reset_specs_keep_explain_consistent():
    engine = _mcl_engine(banking)
    _histories, events = generators.banking_event_stream(53, 10, noise=0.5)
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    blob = stream.snapshot()
    engine.add_spec("checking_roles", banking.no_downgrade_inventory())
    restored = engine.restore_stream(blob)
    assert restored.reset_on_restore == ("checking_roles",)
    for object_id, verdict in restored.verdicts("checking_roles").items():
        violation = restored.explain("checking_roles", object_id)
        assert (violation is None) == verdict, object_id


def test_reregistration_invalidates_clause_tables():
    engine = _mcl_engine(banking)
    witness = _violating_word(engine.provenance("checking_roles"))
    assert engine.explain("checking_roles", witness) is not None  # caches clause tables
    size_before = engine.cache_stats()["size"]
    engine.add_spec("checking_roles", banking.MCL_SOURCE, schema=banking.schema())
    assert engine.cache_stats()["size"] < size_before  # stale clause entries dropped


def test_restore_refuses_pickle_gadgets():
    """A crafted body must not reach arbitrary classes during unpickling."""
    import pickle

    class Gadget:
        def __reduce__(self):
            return (print, ("pwned",))

    import zlib

    engine = _mcl_engine(banking)
    payload = pickle.dumps({"names": (), "objects": ("dense", 0), "gadget": Gadget()})
    blob = (
        MAGIC
        + bytes([0, FORMAT_VERSION])
        + len(payload).to_bytes(8, "big")
        + zlib.crc32(payload).to_bytes(4, "big")
        + payload
    )
    with pytest.raises(SnapshotError, match="builtins"):
        engine.restore_stream(blob)


def test_restore_validates_wire_format():
    engine = _mcl_engine(banking)
    stream = engine.open_stream()
    stream.feed_events(generators.banking_event_stream(37, 5)[1])
    blob = stream.snapshot()

    with pytest.raises(SnapshotError, match="bad magic"):
        engine.restore_stream(b"JUNK" + blob[4:])
    with pytest.raises(SnapshotError, match="truncated"):
        engine.restore_stream(blob[:-3])
    bumped = MAGIC + bytes([0, FORMAT_VERSION + 1]) + blob[6:]
    with pytest.raises(SnapshotError, match="unsupported snapshot format"):
        engine.restore_stream(bumped)
    # A flipped body bit fails the header CRC before anything is unpickled.
    flipped = bytearray(blob)
    flipped[-1] ^= 0x40
    with pytest.raises(SnapshotError, match="checksum"):
        engine.restore_stream(bytes(flipped))
    with pytest.raises(SnapshotError, match="bytes"):
        engine.restore_stream("not bytes")
    # Unknown spec: a fresh engine without the snapshot's specs.
    with pytest.raises(KeyError, match="not registered"):
        HistoryCheckerEngine().restore_stream(blob)


def test_restore_translates_across_different_kernel_grouping():
    """A snapshot taken under one product-cap packing restores under another.

    A tiny cap forces the six banking specs into several fused groups; the
    default cap fuses them into one.  Restoring across the two exercises
    the general per-spec translation path (the group-for-group fast path
    cannot apply), in both directions.
    """
    _histories, events, suite = generators.conforming_banking_stream(47, 30, noise=0.3)

    def build(product_cap):
        engine = HistoryCheckerEngine(product_cap=product_cap)
        for name, spec in suite.items():
            engine.add_spec(name, spec)
        return engine

    split, fused = build(8), build(20_000)
    assert len(split._kernel_for(split.spec_names()).groups) > 1
    assert len(fused._kernel_for(fused.spec_names()).groups) == 1

    control = fused.open_stream()
    control.feed_events(events)
    half = len(events) // 2

    for source, target in ((split, fused), (fused, split)):
        stream = source.open_stream()
        stream.feed_events(events[:half])
        migrated = target.restore_stream(stream.snapshot())
        assert migrated.reset_on_restore == ()
        migrated.feed_events(events[half:])
        assert migrated.all_verdicts() == control.all_verdicts(), (
            source._product_cap,
            target._product_cap,
        )


def test_snapshot_is_resumable_repeatedly():
    """snapshot -> restore -> snapshot -> restore converges to the truth."""
    engine = _mcl_engine(banking)
    _histories, events = generators.banking_event_stream(43, 25, noise=0.2)
    control = engine.open_stream()
    control.feed_events(events)

    third = len(events) // 3
    stream = engine.open_stream()
    stream.feed_events(events[:third])
    stream = engine.restore_stream(stream.snapshot())
    stream.feed_events(events[third : 2 * third])
    stream = engine.restore_stream(stream.snapshot())
    stream.feed_events(events[2 * third :])
    assert stream.all_verdicts() == control.all_verdicts()
    assert stream.events_seen == control.events_seen
