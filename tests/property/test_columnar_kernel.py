"""The fused columnar kernel against the per-spec cursor path and the DFA.

The contract under test, over randomized histories on all five workloads:
for every object and every spec, the fused product kernel's verdict
(:meth:`HistoryCheckerEngine.check_batch_all`, ``StreamChecker`` fed raw
*and* pre-encoded batches) equals the per-spec
:class:`repro.engine.cursors.CursorTable` sweep and a one-shot
``DFA.accepts`` run -- including across a mid-stream spec re-registration,
under LRU cache eviction pressure, with the product cap forcing the kernel
into multiple groups, and after a worker-style payload round trip.
"""

import pickle
import random

import pytest

from repro.engine import (
    CursorTable,
    HistoryCheckerEngine,
    check_columnar_shard,
    compile_spec,
    make_shard_task,
)
from repro.workloads import banking, generators, immigration, phd, three_class, university

ALIEN = frozenset({"ALIEN_CLASS"})


def _workload_cases():
    return [
        (
            "banking",
            banking.ROLE_SETS,
            {
                "checking": banking.checking_role_inventory(),
                "no_downgrade": banking.no_downgrade_inventory(),
            },
        ),
        (
            "university",
            university.ROLE_SETS,
            {
                "all_family": university.expected_families()["all"],
                "life_cycle": university.life_cycle_inventory(),
            },
        ),
        (
            "immigration",
            (
                immigration.ROLE_PERSON,
                immigration.ROLE_VISA_C,
                immigration.ROLE_ABROAD,
                immigration.ROLE_ELIGIBLE,
                immigration.ROLE_IMMIGRANT,
            ),
            {
                "status_order": immigration.status_order_inventory(),
                "no_visa_after": immigration.no_visa_after_immigrant_inventory(),
            },
        ),
        (
            "phd",
            phd.ROLE_SETS,
            {
                "proper_family": phd.expected_proper_family(),
                "sequential": phd.sequential_order_inventory(),
            },
        ),
        (
            "three_class",
            three_class.ROLE_SETS,
            {
                "cycle": three_class.cycle_inventory(),
                "cycle_exact": three_class.cycle_inventory_exact(),
                "branch": three_class.branch_inventory(),
            },
        ),
    ]


def _random_histories(role_sets, seed, count, max_length=9, alien_rate=0.05):
    """Random histories over the workload's role sets, some with alien symbols."""
    rng = random.Random(seed)
    pick = tuple(role_sets) + (ALIEN,)
    histories = []
    for _ in range(count):
        length = rng.randrange(0, max_length)
        word = []
        for _ in range(length):
            if rng.random() < alien_rate:
                word.append(ALIEN)
            else:
                word.append(pick[rng.randrange(len(role_sets))])
        histories.append(tuple(word))
    return histories


WORKLOAD_IDS = [case[0] for case in _workload_cases()]


@pytest.mark.parametrize("workload,role_sets,specs", _workload_cases(), ids=WORKLOAD_IDS)
def test_fused_batch_equals_cursor_table_and_dfa(workload, role_sets, specs):
    histories = _random_histories(role_sets, seed=sum(map(ord, workload)), count=180)
    events = generators.event_stream(histories, seed=7)

    engine = HistoryCheckerEngine()
    for name, spec in specs.items():
        engine.add_spec(name, spec)

    fused = engine.check_batch_all(histories)

    stream = engine.open_stream()
    stream.feed_events(events)

    for name, spec in specs.items():
        compiled = compile_spec(spec.automaton)
        table = CursorTable()
        table.advance_events(compiled, events)
        reference = [spec.automaton.accepts(word) for word in histories]
        assert fused[name] == reference, (workload, name)
        streamed = stream.verdicts(name)
        cursor = table.verdicts(compiled)
        for oid, word in enumerate(histories):
            if word:
                assert streamed[oid] == reference[oid], (workload, name, oid)
                assert cursor[oid] == reference[oid], (workload, name, oid)


@pytest.mark.parametrize("workload,role_sets,specs", _workload_cases(), ids=WORKLOAD_IDS)
def test_preencoded_feed_equals_raw_feed(workload, role_sets, specs):
    histories = _random_histories(role_sets, seed=321, count=120)
    events = generators.event_stream(histories, seed=11)

    engine = HistoryCheckerEngine()
    for name, spec in specs.items():
        engine.add_spec(name, spec)

    raw_stream = engine.open_stream()
    raw_stream.feed_events(events)

    encoded_stream = engine.open_stream()
    cut = len(events) // 2
    batch = engine.encode_events(events[:cut], objects=encoded_stream.object_interner)
    encoded_stream.feed_events(batch)
    encoded_stream.feed_events(events[cut:])  # mixed: encoded then raw

    assert encoded_stream.events_seen == raw_stream.events_seen == len(events)
    for name in specs:
        assert encoded_stream.verdicts(name) == raw_stream.verdicts(name), (workload, name)


def test_mid_stream_reregistration_resets_only_that_spec():
    histories = _random_histories(banking.ROLE_SETS, seed=5, count=200)
    events = generators.event_stream(histories, seed=13)
    cut = len(events) // 2

    engine = HistoryCheckerEngine()
    engine.add_spec("keep", banking.checking_role_inventory())
    engine.add_spec("swap", banking.checking_role_inventory())
    stream = engine.open_stream()
    stream.feed_events(events[:cut])

    engine.add_spec("swap", banking.no_downgrade_inventory())
    stream.feed_events(events[cut:])

    # The swapped spec restarted at the re-registration point ...
    fresh = engine.open_stream(["swap"])
    fresh.feed_events(events[cut:])
    assert stream.verdicts("swap") == fresh.verdicts("swap")
    # ... while the untouched spec kept full-stream verdicts.
    keep = banking.checking_role_inventory().automaton
    verdicts = stream.verdicts("keep")
    for oid, word in enumerate(histories):
        if word:
            assert verdicts[oid] == keep.accepts(word), oid
    assert stream.events_seen == len(events)


def test_lru_eviction_pressure_is_invisible_to_the_fused_kernel():
    histories = _random_histories(banking.ROLE_SETS, seed=17, count=150)
    events = generators.event_stream(histories, seed=19)

    engine = HistoryCheckerEngine(cache_size=1)
    engine.add_spec("checking", banking.checking_role_inventory())
    engine.add_spec("no_downgrade", banking.no_downgrade_inventory())
    stream = engine.open_stream()
    for start in range(0, len(events), 40):
        stream.feed_events(events[start : start + 40])
    assert engine.cache_stats()["evictions"] > 2

    for name, inventory in (
        ("checking", banking.checking_role_inventory()),
        ("no_downgrade", banking.no_downgrade_inventory()),
    ):
        verdicts = stream.verdicts(name)
        for oid, word in enumerate(histories):
            if word:
                assert verdicts[oid] == inventory.automaton.accepts(word), (name, oid)


def test_tiny_product_cap_splits_groups_without_changing_verdicts():
    histories = _random_histories(banking.ROLE_SETS, seed=23, count=160)
    suite = generators.banking_monitoring_suite()

    fused_engine = HistoryCheckerEngine()
    split_engine = HistoryCheckerEngine(product_cap=3)  # force one spec per group
    for name, spec in suite.items():
        fused_engine.add_spec(name, spec)
        split_engine.add_spec(name, spec)

    assert len(fused_engine._kernel_for(tuple(suite)).groups) == 1
    assert len(split_engine._kernel_for(tuple(suite)).groups) > 1
    assert split_engine.check_batch_all(histories) == fused_engine.check_batch_all(histories)

    events = generators.event_stream(histories, seed=29)
    fused_stream = fused_engine.open_stream()
    split_stream = split_engine.open_stream()
    fused_stream.feed_events(events)
    split_stream.feed_events(events)
    for name in suite:
        assert split_stream.verdicts(name) == fused_stream.verdicts(name), name


def test_shard_payload_round_trip_matches_in_process_kernel():
    histories = _random_histories(banking.ROLE_SETS, seed=31, count=300)
    suite = generators.banking_monitoring_suite()
    engine = HistoryCheckerEngine()
    for name, spec in suite.items():
        engine.add_spec(name, spec)

    history_set = engine.encode_histories(histories)
    names = tuple(suite)
    kernel = engine._kernel_for(names)
    specs = [(name, engine.compiled(name)) for name in names]
    task = make_shard_task(kernel, specs, history_set.shard_payload(0, len(history_set)))
    # The worker sees exactly what survives pickling.
    worker_verdicts = check_columnar_shard(pickle.loads(pickle.dumps(task)))
    assert worker_verdicts == engine.check_batch_all(histories)
