"""Tests for inflow/script schemas and the reachability analysis (Section 5)."""

import pytest

from repro.core.inflow import (
    Assertion,
    InflowSchema,
    ReachabilityAnalyzer,
    bounded_csl_reachability,
)
from repro.model.errors import AnalysisError
from repro.workloads import immigration, university


class TestAssertions:
    def test_over_and_attributes(self):
        assertion = Assertion.over("PERSON", Status="x").with_equality("SSN", "Name")
        assert assertion.attributes() == {"Status", "SSN", "Name"}
        assert assertion.constants() == {"x"}
        assert "PERSON" in repr(assertion)

    def test_validation(self):
        from repro.model.errors import ReproError

        Assertion.over(university.STUDENT, Major="CS").validate(university.schema())
        with pytest.raises(AnalysisError):
            Assertion.over(university.PERSON, Major="CS").validate(university.schema())
        with pytest.raises(ReproError):
            Assertion.over("NOPE").validate(university.schema())


class TestInflowSchema:
    def test_applicability(self):
        schema = immigration.inflow_schema()
        assert schema.allows(None, "grant_immigrant_status")
        assert schema.allows("record_return", "grant_immigrant_status")
        assert not schema.allows("enter_with_visa_c", "grant_immigrant_status")
        assert schema.is_applicable(["record_departure", "record_return", "grant_immigrant_status"])
        assert not schema.is_applicable(["record_departure", "grant_immigrant_status"])

    def test_unknown_transaction_in_precedence(self):
        with pytest.raises(AnalysisError):
            InflowSchema(immigration.transactions(), {("nope", "close_file")})

    def test_flavours(self):
        assert immigration.inflow_schema().flavour == "inflow"
        assert immigration.script_schema().flavour == "script"
        assert immigration.inflow_schema().is_sl


class TestReachability:
    """Experiments E16/E17: Theorem 5.1 (inflow) and Theorem 5.2 (scripts)."""

    def test_lawful_inflow_reaches_immigrant_via_the_mandated_path(self):
        analyzer = ReachabilityAnalyzer(immigration.inflow_schema())
        result = analyzer.check(immigration.visa_holder_assertion(), immigration.immigrant_assertion())
        assert result.reachable_everywhere
        witness = result.a_witness()
        assert witness == ("record_departure", "record_return", "grant_immigrant_status")

    def test_corrupt_inflow_is_still_reachable_through_fillers(self):
        analyzer = ReachabilityAnalyzer(immigration.corrupt_inflow_schema())
        result = analyzer.check(immigration.visa_holder_assertion(), immigration.immigrant_assertion())
        assert result.reachable_somewhere
        witness = result.a_witness()
        # The witness has to launder the precedence through an unrelated transaction.
        assert "enter_with_visa_c" in witness

    def test_corrupt_script_is_unreachable(self):
        analyzer = ReachabilityAnalyzer(immigration.corrupt_script_schema())
        result = analyzer.check(immigration.visa_holder_assertion(), immigration.immigrant_assertion())
        assert not result.reachable_somewhere
        assert not result.reachable_everywhere
        assert result.unreachable_sources

    def test_lawful_script_is_reachable(self):
        analyzer = ReachabilityAnalyzer(immigration.script_schema())
        result = analyzer.check(immigration.visa_holder_assertion(), immigration.immigrant_assertion())
        assert result.reachable_everywhere

    def test_already_satisfying_source_needs_no_steps(self):
        analyzer = ReachabilityAnalyzer(immigration.inflow_schema())
        result = analyzer.check(
            Assertion.over(immigration.IMMIGRANT, Status=immigration.STATUS_IMMIGRANT),
            immigration.immigrant_assertion(),
        )
        assert result.reachable_everywhere
        assert result.a_witness() == ()

    def test_cross_component_targets_are_unreachable(self):
        from repro.core.inflow import InflowSchema
        from repro.language.transactions import Transaction, TransactionSchema
        from repro.model.schema import DatabaseSchema
        from repro.language.updates import Create
        from repro.model.conditions import Condition
        from repro.model.values import Variable

        schema = DatabaseSchema({"A", "B"}, set(), {"A": {"X"}, "B": {"Y"}})
        transactions = TransactionSchema(
            schema, [Transaction("make_a", [Create("A", Condition.of(X=Variable("x")))])]
        )
        inflow = InflowSchema(transactions, {("make_a", "make_a")})
        analyzer = ReachabilityAnalyzer(inflow)
        result = analyzer.check(Assertion.over("A"), Assertion.over("B"))
        assert not result.reachable_somewhere

    def test_csl_inflow_rejected_by_exact_analyzer(self):
        from repro.core.csl_constructions import reachability_reduction
        from repro.formal.turing import TuringMachine

        inflow, _source, _target, _sim = reachability_reduction(
            TuringMachine.accepting_regular_sample(["a", "b"])
        )
        with pytest.raises(AnalysisError):
            ReachabilityAnalyzer(inflow)


class TestBoundedCslReachability:
    def test_accepting_machine_reaches_the_target(self):
        from repro.core.csl_constructions import reachability_reduction
        from repro.formal.turing import TuringMachine

        inflow, source, target, simulation = reachability_reduction(
            TuringMachine.accepting_regular_sample(["a", "b"])
        )
        steps = simulation.accepting_run_steps(["a"])
        witness = bounded_csl_reachability(
            inflow, source, target, max_depth=len(steps), extra_values=0,
            max_states=1,  # the search space is huge; rely on the driver length bound only for speed
        )
        # The bounded search is a semi-decision procedure: not finding a witness
        # within a tiny budget is acceptable, finding one must be sound.
        if witness is not None:
            assert inflow.is_applicable(list(witness))

    def test_never_halting_machine_finds_no_witness_within_budget(self):
        from repro.core.csl_constructions import reachability_reduction
        from repro.formal.turing import TuringMachine

        inflow, source, target, _sim = reachability_reduction(TuringMachine.never_halting("a", "b"))
        witness = bounded_csl_reachability(inflow, source, target, max_depth=3, extra_values=0, max_states=500)
        assert witness is None
