"""E1 + E2: the Figure 1/2 schema and instance, and role-set enumeration (Example 3.1)."""

from repro.core.rolesets import enumerate_role_sets
from repro.language.semantics import run_sequence
from repro.model.instance import DatabaseInstance
from repro.model.values import Assignment
from repro.workloads import phd, university


def test_e1_build_figure_2_instance(benchmark):
    instance = benchmark(university.sample_instance)
    assert len(instance.all_objects()) == 5


def test_e1_execute_a_student_life_cycle(benchmark):
    transactions = university.transactions()
    empty = DatabaseInstance.empty(university.schema())
    steps = [
        (transactions["T1_enroll_student"], Assignment(s="1", n="A", m="CS", t=1990)),
        (transactions["T2_grant_assistantship"], Assignment(s="1", p=50, x=100, d="CS")),
        (transactions["T3_cancel_assistantship"], Assignment(s="1")),
        (transactions["T4_delete_person"], Assignment(s="1")),
    ]

    def life_cycle():
        return run_sequence(empty, steps)

    final, trace = benchmark(life_cycle)
    assert not final.all_objects()


def test_e2_enumerate_role_sets_of_figure_1(benchmark):
    role_sets = benchmark(enumerate_role_sets, university.schema())
    # Example 3.1: ∅, [P], [S], [E], [SE], [G].
    assert len(role_sets) == 6


def test_e2_enumerate_role_sets_of_figure_4(benchmark):
    role_sets = benchmark(enumerate_role_sets, phd.schema())
    assert len(role_sets) == 9
