"""Preventive enforcement: masks, the enforce=True gate, lint, delta re-checks.

The contract under test, layer by layer:

* the per-state **admissibility mask** on every compiled table answers
  exactly what a one-step :func:`repro.engine.diagnostics.replay` would --
  across all five bundled workloads, every reachable state, every symbol
  (plus an alien one);
* ``feed_events(..., enforce=True)`` is a transactional gate: refused
  events carry span-anchored violations, ``reject_event`` skips and
  continues, ``reject_batch`` rolls the whole batch back untouched;
* the durable stream journals **admitted events only** -- recovery replays
  to the enforced session's exact state, and a refused batch leaves the
  WAL byte-identical;
* ``screen_histories`` (the batch analogue) matches the replay oracle and
  merges deterministically across a process pool;
* spec re-registration re-validates only objects whose state actually
  moved (``RevalidationReport``), and ``lint_specs`` flags unsatisfiable /
  equivalent / redundant / contradictory constraint sets at registration;
* the satellite contracts: ``trace_limit`` stops recorded traces from
  growing once an object hits the doomed sink, ``engine.stats()`` always
  carries a ``fault_tolerance`` section of a fixed shape, and restoring a
  snapshot across a re-registration is decided by table *fingerprint*, not
  generation.
"""

from __future__ import annotations

import importlib
import warnings
from collections import deque

import pytest

from repro.engine import (
    HAVE_NUMPY,
    EnforcementError,
    EnforcementReport,
    HistoryCheckerEngine,
    ProcessPoolBackend,
    SerialExecutor,
    SupervisedExecutor,
    zeroed_stats,
)
from repro.engine.diagnostics import replay
from repro.workloads import banking, generators
from repro.workloads.generators import conforming_banking_stream

WORKLOADS = ("banking", "university", "immigration", "phd", "three_class")
KINDS = ("fused", "vector") if HAVE_NUMPY else ("fused",)

ALIEN = banking.RoleSet({"ALIEN_CLASS"})


def _suite_engine(kind="fused", seed=101, objects=30, mean_length=12, **kwargs):
    """A banking-suite engine plus mostly-conforming interleaved events."""
    histories, events, suite = conforming_banking_stream(
        seed=seed, objects=objects, mean_length=mean_length
    )
    engine = HistoryCheckerEngine(kernel=kind, **kwargs)
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    return engine, histories, events, tuple(sorted(suite))


def _state_witnesses(spec):
    """BFS over the compiled table: state -> a shortest symbol word reaching it."""
    by_code = {code: symbol for symbol, code in spec.codes.items()}
    witnesses = {spec.initial: ()}
    queue = deque([spec.initial])
    while queue:
        state = queue.popleft()
        if state == spec.dead:
            continue
        word = witnesses[state]
        for code in range(spec.n_symbols):
            successor = spec.table[state * spec.n_symbols + code]
            if successor not in witnesses:
                witnesses[successor] = word + (by_code[code],)
                queue.append(successor)
    return witnesses


# --------------------------------------------------------------------------- #
# The admissibility mask vs. the one-step replay oracle
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("workload", WORKLOADS)
def test_admissibility_mask_matches_one_step_replay(workload):
    """mask[state][symbol] == "replaying one more symbol stays salvageable".

    For every reachable state of every constraint of every bundled workload
    (witness words from a table BFS), over every alphabet symbol plus an
    alien one: the O(1) mask lookup must agree with a full replay of the
    witness word extended by that symbol.
    """
    module = importlib.import_module(f"repro.workloads.{workload}")
    engine = HistoryCheckerEngine()
    constraints = module.mcl_constraints()
    for name, constraint in constraints.items():
        engine.add_spec(name, constraint)
    checked = 0
    for name in constraints:
        spec = engine.compiled(name)
        witnesses = _state_witnesses(spec)
        assert spec.dead not in witnesses or len(witnesses) > 1
        symbols = list(spec.codes) + [ALIEN]
        for state, word in witnesses.items():
            for symbol in symbols:
                oracle = replay(spec, word + (symbol,))[1] is None
                assert spec.admissible(state, symbol) == oracle, (workload, name, state, symbol)
                checked += 1
        # The synthetic dead state admits nothing, even unreached.
        for symbol in symbols:
            assert not spec.admissible(spec.dead, symbol), (workload, name)
    assert checked  # every workload exercised at least one (state, symbol)


def test_engine_admissible_is_an_initial_state_mask_lookup():
    engine = HistoryCheckerEngine()
    for name, constraint in banking.mcl_constraints().items():
        engine.add_spec(name, constraint)
    for name in ("checking_roles", "no_downgrade"):
        spec = engine.compiled(name)
        for symbol in list(spec.codes) + [ALIEN]:
            oracle = replay(spec, (symbol,))[1] is None
            assert engine.admissible(name, symbol) == oracle, (name, symbol)
            assert engine.admissible(name, symbol, state=spec.initial) == oracle


@pytest.mark.parametrize("kind", KINDS)
def test_stream_admissible_matches_replay_on_live_objects(kind):
    engine, histories, events, names = _suite_engine(kind)
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    symbols = sorted(
        {symbol for name in names for symbol in engine.compiled(name).codes}, key=repr
    )
    for index, history in enumerate(histories):
        for name in names:
            spec = engine.compiled(name)
            state, fatal = replay(spec, history)
            if fatal is not None:
                continue  # doomed objects collapse onto the sink; mask row is all-zero
            for symbol in symbols:
                oracle = replay(spec, history + (symbol,))[1] is None
                assert stream.admissible(index, symbol, name=name) == oracle, (kind, name)
        if all(replay(engine.compiled(name), history)[1] is None for name in names):
            for symbol in symbols:
                oracle = all(
                    replay(engine.compiled(name), history + (symbol,))[1] is None
                    for name in names
                )
                assert stream.admissible(index, symbol) == oracle, (kind, index, symbol)
    # Unknown objects are judged from the initial state; alien symbols never admit.
    assert not stream.admissible("never-seen", ALIEN)


# --------------------------------------------------------------------------- #
# The enforce=True gate
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", KINDS)
def test_reject_event_skips_and_continues(kind):
    engine, histories, events, names = _suite_engine(kind, seed=7)
    oracle = engine.screen_histories(histories)
    fatal_total = sum(
        1
        for index in range(len(histories))
        if any(oracle[name][index] is not None for name in names)
    )
    stream = engine.open_stream(record=True)
    report = stream.feed_events(events, enforce=True)
    assert isinstance(report, EnforcementReport) and isinstance(report, int)
    assert int(report) == report.admitted == stream.events_seen
    assert report.policy == "reject_event"
    assert int(report) + len(report.rejected) == len(events)
    if fatal_total:
        assert report.rejected  # the mostly-conforming stream still violates somewhere
    for record in report.rejected:
        assert events[record.index] == (record.object_id, record.symbol)
        assert record.blocked_specs and set(record.blocked_specs) <= set(names)
        violation = record.violation
        assert violation is not None and violation.doomed
        assert violation.fatal_index == len(violation.history) - 1
        assert violation.history[-1] == record.symbol
        assert violation.spec in record.blocked_specs
    # The invariant the gate exists for: nothing in the session is doomed.
    for name in names:
        for object_id in stream.objects(name):
            assert not stream.doomed(name, object_id), (kind, name, object_id)


@pytest.mark.parametrize("kind", KINDS)
def test_reject_batch_rolls_back_untouched(kind):
    engine, histories, events, names = _suite_engine(kind, seed=7)
    half = len(events) // 2
    stream = engine.open_stream(record=True)
    clean_report = stream.feed_events(events[:half], enforce=True)
    seen_before = stream.events_seen
    verdicts_before = {name: stream.verdicts(name) for name in names}
    histories_before = {index: stream.history(index) for index in range(len(histories))}
    rest = events[half:]
    probe = engine.open_stream()
    probe_report = probe.feed_events(rest, enforce=True)
    if not probe_report.rejected:
        pytest.skip("seed produced no violation in the second half")
    with pytest.raises(EnforcementError) as caught:
        stream.feed_events(rest, enforce=True, policy="reject_batch")
    error = caught.value
    assert error.policy == "reject_batch"
    assert rest[error.index] == (error.object_id, error.symbol)
    assert error.blocked_specs and set(error.blocked_specs) <= set(names)
    assert error.violation is not None and error.violation.doomed
    # All-or-nothing: cursor state, traces and the event counter are untouched.
    assert stream.events_seen == seen_before == int(clean_report)
    assert {name: stream.verdicts(name) for name in names} == verdicts_before
    assert {index: stream.history(index) for index in range(len(histories))} == histories_before
    # The same batch under reject_event admits everything except the violations.
    report = stream.feed_events(rest, enforce=True)
    assert int(report) == len(rest) - len(report.rejected)


def test_rejections_of_mcl_specs_carry_source_spans():
    """The gate's violations are span-anchored when specs come from MCL."""
    engine = HistoryCheckerEngine()
    for name, constraint in banking.mcl_constraints().items():
        engine.add_spec(name, constraint)
    stream = engine.open_stream(record=True)
    downgrade = [
        ("acct", banking.ROLE_BOTH),
        ("acct", banking.ROLE_REGULAR),  # BOTH -> REGULAR violates no_downgrade
    ]
    report = stream.feed_events(downgrade, enforce=True)
    assert len(report.rejected) == 1
    violation = report.rejected[0].violation
    assert violation is not None and violation.doomed
    assert violation.clauses and any(clause.line is not None for clause in violation.clauses)
    assert any(not clause.satisfied for clause in violation.clauses)


def test_enforcement_policy_and_trace_limit_validation():
    engine, _, events, _ = _suite_engine()
    stream = engine.open_stream()
    with pytest.raises(ValueError, match="policy"):
        stream.feed_events(events[:3], enforce=True, policy="abort")
    with pytest.raises(ValueError, match="trace_limit"):
        engine.open_stream(trace_limit=0)


def test_enforced_feed_with_no_specs_admits_everything():
    engine, _, events, _ = _suite_engine()
    stream = engine.open_stream(names=())
    report = stream.feed_events(events, enforce=True)
    assert int(report) == len(events) and not report.rejected
    assert stream.events_seen == len(events)


def test_non_recording_rejections_answer_violation_none():
    engine, _, events, _ = _suite_engine(seed=7)
    stream = engine.open_stream()  # record=False: pre-batch history is gone
    report = stream.feed_events(events, enforce=True)
    assert report.rejected
    for record in report.rejected:
        assert record.violation is None
        assert record.blocked_specs  # the mask still names the blockers


# --------------------------------------------------------------------------- #
# screen_histories -- the batch analogue
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", KINDS)
def test_screen_histories_matches_replay_oracle(kind):
    engine, histories, _, names = _suite_engine(kind, seed=11)
    screened = engine.screen_histories(histories)
    assert sorted(screened) == sorted(names)
    for name in names:
        spec = engine.compiled(name)
        expected = [replay(spec, history)[1] for history in histories]
        assert screened[name] == expected, (kind, name)


def test_screen_histories_sharded_merge_is_deterministic():
    engine, histories, _, names = _suite_engine(batch_size=3, min_shard_events=1)
    serial = engine.screen_histories(histories)
    with ProcessPoolBackend(max_workers=2) as pool:
        for _ in range(2):  # repeated runs: shard order, not arrival order
            assert engine.screen_histories(histories, executor=pool) == serial


# --------------------------------------------------------------------------- #
# The WAL journals admitted events only
# --------------------------------------------------------------------------- #
def test_durable_enforced_feed_journals_admitted_only(tmp_path):
    engine, histories, events, names = _suite_engine(seed=7)
    durable = engine.open_durable_stream(tmp_path, checkpoint_every=None)
    admitted = 0
    rejected = 0
    for start in range(0, len(events), 25):
        report = durable.feed_events(events[start : start + 25], enforce=True)
        admitted += int(report)
        rejected += len(report.rejected)
    assert rejected and admitted == durable.events_seen
    live = durable.all_verdicts()
    durable.close()

    fresh = HistoryCheckerEngine(kernel="fused")
    for name, spec in generators.banking_monitoring_suite().items():
        fresh.add_spec(name, spec)
    recovered = fresh.recover_stream(tmp_path)
    # Recovery replays the WAL -- which must hold the admitted prefix only.
    assert recovered.events_seen == admitted
    assert recovered.all_verdicts() == live
    for name in names:
        for object_id in recovered.stream.objects(name):
            assert not recovered.stream.doomed(name, object_id), (name, object_id)


def test_durable_reject_batch_leaves_wal_untouched(tmp_path):
    engine, histories, events, names = _suite_engine(seed=7)
    half = len(events) // 2
    durable = engine.open_durable_stream(tmp_path, checkpoint_every=None)
    first = durable.feed_events(events[:half], enforce=True)
    seen = durable.events_seen
    probe = engine.open_stream()
    if not probe.feed_events(events[half:], enforce=True).rejected:
        pytest.skip("seed produced no violation in the second half")
    with pytest.raises(EnforcementError):
        durable.feed_events(events[half:], enforce=True, policy="reject_batch")
    assert durable.events_seen == seen == int(first)
    live = durable.all_verdicts()
    durable.close()
    fresh = HistoryCheckerEngine(kernel="fused")
    for name, spec in generators.banking_monitoring_suite().items():
        fresh.add_spec(name, spec)
    recovered = fresh.recover_stream(tmp_path)
    assert recovered.events_seen == seen
    assert recovered.all_verdicts() == live


# --------------------------------------------------------------------------- #
# trace_limit: recorded traces stop growing at the cap
# --------------------------------------------------------------------------- #
def test_trace_limit_caps_recorded_history():
    engine, histories, events, names = _suite_engine(seed=7, objects=6, mean_length=40)
    limit = 8
    stream = engine.open_stream(record=True, trace_limit=limit)
    stream.feed_events(events)
    for index, history in enumerate(histories):
        assert stream.history(index) == tuple(history[:limit]), index
    # Regression: a doomed object (groups collapsed onto the sink) used to
    # keep appending to its trace on every event, unboundedly.
    doomed_id = next(
        (
            object_id
            for name in names
            for object_id in stream.objects(name)
            if stream.doomed(name, object_id)
        ),
        0,
    )
    before = stream.history(doomed_id)
    symbol = next(iter(engine.compiled(names[0]).codes))
    stream.feed_events([(doomed_id, symbol)] * 100)
    assert stream.history(doomed_id) == before
    assert len(stream.history(doomed_id)) <= limit
    # The cap survives a snapshot round trip.
    restored = engine.restore_stream(stream.snapshot())
    restored.feed_events([(doomed_id, symbol)] * 100)
    assert restored.history(doomed_id) == before


def test_unlimited_traces_remain_the_default():
    engine, histories, events, _ = _suite_engine(seed=7, objects=4, mean_length=20)
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    for index, history in enumerate(histories):
        assert stream.history(index) == tuple(history), index


# --------------------------------------------------------------------------- #
# stats() shape contract
# --------------------------------------------------------------------------- #
FAULT_TOLERANCE_KEYS = {
    "retries",
    "timeouts",
    "respawns",
    "quarantined",
    "degraded",
    "shard_failures",
    "degraded_now",
    "policy",
}


def test_stats_always_carries_a_fault_tolerance_section():
    plain = HistoryCheckerEngine().stats()
    assert plain["fault_tolerance"] == zeroed_stats()
    assert set(plain["fault_tolerance"]) == FAULT_TOLERANCE_KEYS
    assert not plain["fault_tolerance"]["degraded_now"]
    with SupervisedExecutor(SerialExecutor()) as supervised:
        section = HistoryCheckerEngine(executor=supervised).stats()["fault_tolerance"]
        assert set(section) == FAULT_TOLERANCE_KEYS


def test_zeroed_stats_returns_fresh_dicts():
    first, second = zeroed_stats(), zeroed_stats()
    assert first == second and first is not second
    first["retries"] = 99
    assert zeroed_stats()["retries"] == 0


# --------------------------------------------------------------------------- #
# Snapshot restore across re-registration: fingerprint, not generation
# --------------------------------------------------------------------------- #
def test_restore_after_same_text_reregistration_keeps_state():
    engine, histories, events, names = _suite_engine(seed=13)
    suite = generators.banking_monitoring_suite()
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    expected = {name: stream.verdicts(name) for name in names}
    blob = stream.snapshot()
    # Re-registering the identical automaton bumps every generation (live
    # streams reset) but compiles to the identical table fingerprint --
    # restore must keep the snapshot's progress.
    for name in names:
        engine.add_spec(name, suite[name])
    restored = engine.restore_stream(blob)
    assert restored.reset_on_restore == ()
    assert restored.events_seen == len(events)
    assert {name: restored.verdicts(name) for name in names} == expected
    # The restored stream adopts the *current* generations: feeding works
    # without a retroactive reset.
    restored.feed_events(events[:5])
    assert restored.last_revalidation is None


def test_restore_after_changed_text_reregistration_resets_that_spec():
    engine, histories, events, names = _suite_engine(seed=13)
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    blob = stream.snapshot()
    target, keeper = names[0], names[1]
    keeper_verdicts = stream.verdicts(keeper)
    # Swap in a genuinely different automaton under the same name: a spec
    # accepting exactly the one-event word (REGULAR,).
    from repro.formal.nfa import NFA

    reg, interest = banking.ROLE_REGULAR, banking.ROLE_INTEREST
    engine.add_spec(target, NFA([0, 1], [reg, interest], {(0, reg): [1]}, [0], [1]))
    restored = engine.restore_stream(blob)
    assert restored.reset_on_restore == (target,)
    assert restored.verdicts(keeper) == keeper_verdicts
    # The reset spec restarts from its initial state: no object carries
    # pre-snapshot progress.
    initial_ok = engine.compiled(target).accepts(())
    for verdict in restored.verdicts(target).values():
        assert verdict == initial_ok


# --------------------------------------------------------------------------- #
# Delta-driven re-checking on re-registration
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", KINDS)
def test_last_revalidation_reports_only_moved_objects(kind):
    engine, histories, events, names = _suite_engine(kind, seed=17)
    target = names[0]
    stream = engine.open_stream(record=True)
    stream.feed_events(events)
    old_spec = engine.compiled(target)
    moved = {
        index
        for index, history in enumerate(histories)
        if replay(old_spec, history)[0] != old_spec.initial
        or replay(old_spec, history)[1] is not None
    }
    engine.add_spec(target, generators.banking_monitoring_suite()[target])
    stream.feed_events(events[:1])  # resolves the new kernel
    report = stream.last_revalidation
    assert report is not None and report.specs == (target,)
    assert set(report.changed[target]) == moved, kind
    assert report.replayed == len(moved)
    new_spec = engine.compiled(target)
    for index in moved:
        expected = new_spec.accepts(histories[index])
        assert report.verdicts[target][index] == expected, (kind, index)


def test_revalidation_without_recording_skips_the_replays():
    engine, histories, events, names = _suite_engine(seed=17)
    stream = engine.open_stream()  # record=False
    stream.feed_events(events)
    engine.add_spec(names[0], generators.banking_monitoring_suite()[names[0]])
    stream.feed_events(events[:1])
    report = stream.last_revalidation
    assert report is not None and report.verdicts is None and report.replayed == 0


# --------------------------------------------------------------------------- #
# Registration-time lint
# --------------------------------------------------------------------------- #
def test_lint_specs_flags_the_banking_redundancy():
    engine = HistoryCheckerEngine()
    for name, constraint in banking.mcl_constraints().items():
        engine.add_spec(name, constraint)
    findings = engine.lint_specs()
    assert any(
        finding.kind == "redundant" and finding.specs == ("no_downgrade", "checking_roles")
        for finding in findings
    )
    rendered = "\n".join(finding.render() for finding in findings)
    assert "no_downgrade" in rendered and "checking_roles" in rendered


def test_lint_specs_flags_equivalent_contradictory_and_unsatisfiable():
    from repro.formal.nfa import NFA

    reg, interest = banking.ROLE_REGULAR, banking.ROLE_INTEREST
    only_reg = NFA([0, 1], [reg, interest], {(0, reg): [1]}, [0], [1])
    only_int = NFA([0, 1], [reg, interest], {(0, interest): [1]}, [0], [1])
    never = NFA([0], [reg, interest], {}, [0], [])
    engine = HistoryCheckerEngine()
    engine.add_spec("a", only_reg)
    engine.add_spec("a_again", only_reg)
    engine.add_spec("b", only_int)
    engine.add_spec("impossible", never)
    kinds = {finding.kind: finding for finding in engine.lint_specs()}
    assert kinds["equivalent"].specs == ("a", "a_again")
    assert set(kinds["contradictory"].specs) <= {"a", "a_again", "b"}
    assert kinds["unsatisfiable"].specs == ("impossible",)
    # An unsatisfiable spec dooms every object before its first event --
    # exactly what the gate then refuses wholesale.
    stream = engine.open_stream(names=("impossible",))
    report = stream.feed_events([(0, reg), (1, interest)], enforce=True)
    assert int(report) == 0 and len(report.rejected) == 2


def test_add_spec_lint_warns_on_findings_touching_the_new_name():
    constraints = banking.mcl_constraints()
    engine = HistoryCheckerEngine()
    engine.add_spec("checking_roles", constraints["checking_roles"])
    with pytest.warns(UserWarning, match="redundant"):
        engine.add_spec("no_downgrade", constraints["no_downgrade"], lint=True)
    # Without lint=True registration stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        engine.add_spec("no_downgrade", constraints["no_downgrade"])


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
