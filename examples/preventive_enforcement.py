"""Preventive enforcement walkthrough: refuse doomed migrations up front.

Everything else in the engine *detects* constraint violations after the
fact; the enforcement gate *prevents* them.  The primitive is the
per-state admissibility mask derived from each compiled table's doomed
bitmap: an event is admissible iff its successor state can still reach
acceptance, so "would this migration doom the account?" is a one-byte
read, never a replay.  This example

1. registers the banking monitoring suite with ``lint=True`` -- the
   registration-time implication checks flag a redundant constraint pair
   before any event is fed,
2. answers point-in-time admissibility questions through the O(1)
   surfaces (``engine.admissible`` and ``StreamChecker.admissible``),
3. feeds a mostly-conforming event stream through the transactional gate
   (``feed_events(..., enforce=True)``): refused events are skipped, the
   admitted rest keeps every account salvageable, and the per-event
   rejection records name the blocking specs,
4. shows the all-or-nothing policy -- ``reject_batch`` raises on the
   first inadmissible event and rolls the whole batch back untouched,
5. rejects an event against an MCL constraint and reads the violation's
   span-anchored clause diagnosis (``file:line:column`` into the source).

Run with:  python examples/preventive_enforcement.py
"""

import warnings

from repro.engine import EnforcementError, HistoryCheckerEngine
from repro.workloads import banking, generators

BATCH = 2_000


def main() -> None:
    histories, events, suite = generators.conforming_banking_stream(
        seed=7, objects=2_000, mean_length=10
    )
    print(f"monitoring suite: {', '.join(suite)}")
    print(f"stream: {len(events)} events over {len(histories)} accounts\n")

    # ----------------------------------------------------------------- #
    # 1. Registration-time lint: implication checks over the spec set.
    # ----------------------------------------------------------------- #
    engine = HistoryCheckerEngine()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for name, spec in suite.items():
            engine.add_spec(name, spec, lint=True)
    findings = engine.lint_specs()
    print(f"lint: {len(findings)} findings ({len(caught)} registration warnings), e.g.")
    first = findings[0]
    print(f"  [{first.kind}] {' + '.join(first.specs)}: {first.detail}\n")

    # ----------------------------------------------------------------- #
    # 2. Point-in-time admissibility: mask lookups, no replay.
    # ----------------------------------------------------------------- #
    fresh = engine.admissible("no_downgrade", banking.ROLE_INTEREST)
    print(f"fresh account may open as interest checking (no_downgrade): {fresh}")
    stream = engine.open_stream(record=True)
    stream.feed_events(
        [("acct-1", banking.ROLE_REGULAR), ("acct-1", banking.ROLE_INTEREST)]
    )
    downgrade = stream.admissible("acct-1", banking.ROLE_REGULAR, name="no_downgrade")
    print(f"acct-1 (upgraded to interest) may downgrade back:           {downgrade}\n")

    # ----------------------------------------------------------------- #
    # 3. The transactional gate, skip-and-continue policy.
    # ----------------------------------------------------------------- #
    admitted = rejected = 0
    first_record = None
    for start in range(0, len(events), BATCH):
        report = stream.feed_events(events[start : start + BATCH], enforce=True)
        admitted += int(report)
        rejected += report.rejection_count
        if first_record is None and report.rejection_count:
            first_record = report.rejected[0]
    print(
        f"enforced feed: {admitted} events admitted, {rejected} refused "
        f"({rejected / len(events):.1%} of the stream)"
    )
    print(
        f"first refusal: {first_record.symbol} on {first_record.object_id!r}, "
        f"blocked by {', '.join(first_record.blocked_specs)}"
    )
    doomed = sum(
        stream.doomed(name, object_id)
        for name in suite
        for object_id in stream.objects(name)
    )
    print(f"doomed accounts after the enforced feed: {doomed} (the gate's invariant)\n")

    # ----------------------------------------------------------------- #
    # 4. All-or-nothing: reject_batch rolls back untouched.
    # ----------------------------------------------------------------- #
    before = stream.events_seen
    poison = [("acct-1", banking.ROLE_BOTH), ("acct-1", banking.ROLE_REGULAR)]
    try:
        stream.feed_events(poison, enforce=True, policy="reject_batch")
    except EnforcementError as error:
        print(
            f"reject_batch refused the batch at event {error.index} "
            f"({error.symbol} on {error.object_id!r}, spec {error.spec!r})"
        )
    assert stream.events_seen == before, "rollback left the session untouched"
    print(f"events_seen unchanged at {stream.events_seen}\n")

    # ----------------------------------------------------------------- #
    # 5. MCL provenance: a rejection names the clause that blocked it.
    # ----------------------------------------------------------------- #
    mcl_engine = HistoryCheckerEngine()
    for name, constraint in banking.mcl_constraints().items():
        mcl_engine.add_spec(name, constraint)
    mcl_stream = mcl_engine.open_stream(record=True)
    report = mcl_stream.feed_events(
        [("acct", banking.ROLE_BOTH), ("acct", banking.ROLE_REGULAR)], enforce=True
    )
    record = report.rejected[0]
    violation = record.violation
    print(f"MCL rejection on {record.object_id!r}: spec {violation.spec!r}")
    for clause in violation.clauses:
        status = "violated" if not clause.satisfied else "satisfied"
        print(f"  banking.mcl:{clause.line}:{clause.column} [{status}] {clause.text}")


if __name__ == "__main__":
    main()
