"""Migration inventories: sets of migration patterns used as dynamic constraints.

Definition 3.3: a migration inventory over the role sets ``Ω`` is a set
``L`` of object migration patterns that is prefix closed
(``Init(L) ⊆ L``) and contained in ``∅* Ω+^* ∅*``.  Regular inventories are
given by regular expressions over role sets (Example 3.2, Example 3.3); this
class wraps the corresponding automaton and offers the operations the rest
of the package needs: membership, prefix closure, containment, equivalence,
sampling, and the paper's word functions at the language level.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.patterns import MigrationPattern
from repro.core.rolesets import EMPTY_ROLE_SET, RoleSet, enumerate_role_sets
from repro.formal import decision, operations
from repro.formal.nfa import NFA
from repro.formal.regex import Regex, parse_regex
from repro.model.schema import DatabaseSchema

PatternLike = Union[MigrationPattern, Sequence[RoleSet]]


def _as_word(pattern: PatternLike) -> Tuple[RoleSet, ...]:
    if isinstance(pattern, MigrationPattern):
        return pattern.word
    return tuple(rs if isinstance(rs, RoleSet) else RoleSet(rs) for rs in pattern)


def coerce_inventory(constraint) -> "MigrationInventory":
    """Interpret ``constraint`` as an inventory.

    Accepts :class:`MigrationInventory`, anything exposing ``inventory()``
    returning one (compiled MCL constraints,
    :class:`repro.spec.compile.CompiledConstraint`), or a raw automaton.
    The comparison methods below route through this, so MCL-compiled specs
    can be used wherever inventories are expected.
    """
    if isinstance(constraint, MigrationInventory):
        return constraint
    factory = getattr(constraint, "inventory", None)
    if callable(factory):
        made = factory()
        if isinstance(made, MigrationInventory):
            return made
    if isinstance(constraint, NFA):
        return MigrationInventory(constraint)
    raise TypeError(
        f"cannot interpret {type(constraint).__name__} as a migration inventory "
        "(expected a MigrationInventory, a compiled MCL constraint, or an NFA)"
    )


class MigrationInventory:
    """A (regular) migration inventory, backed by a finite automaton.

    The alphabet always includes the empty role set so that the ``∅`` padding
    of Definitions 3.2/3.4 can be expressed even when the defining expression
    does not mention it.
    """

    def __init__(self, automaton: NFA, alphabet: Optional[Iterable[RoleSet]] = None) -> None:
        symbols = set(automaton.alphabet) | {EMPTY_ROLE_SET}
        if alphabet is not None:
            symbols |= {rs if isinstance(rs, RoleSet) else RoleSet(rs) for rs in alphabet}
        self._automaton = automaton.with_alphabet(symbols)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_regex(
        cls,
        expression: Regex,
        alphabet: Optional[Iterable[RoleSet]] = None,
        prefix_close: bool = False,
    ) -> "MigrationInventory":
        """Build an inventory from a :class:`repro.formal.regex.Regex` over role sets."""
        automaton = expression.to_nfa()
        inventory = cls(automaton, alphabet)
        return inventory.prefix_closure() if prefix_close else inventory

    @classmethod
    def from_text(
        cls,
        text: str,
        symbols: Mapping[str, RoleSet],
        alphabet: Optional[Iterable[RoleSet]] = None,
        prefix_close: bool = False,
    ) -> "MigrationInventory":
        """Parse a textual regular expression, e.g. ``"0* [P]* [S]* [E]+ 0*"``.

        ``symbols`` maps identifiers to role sets; :func:`repro.core.rolesets.symbol_map`
        builds such a mapping from a schema's role sets.
        """
        return cls.from_regex(parse_regex(text, symbols), alphabet, prefix_close)

    @classmethod
    def from_patterns(
        cls,
        patterns: Iterable[PatternLike],
        alphabet: Optional[Iterable[RoleSet]] = None,
        prefix_close: bool = True,
    ) -> "MigrationInventory":
        """The (finite) inventory consisting of the given patterns and, by default, their prefixes."""
        words = [_as_word(pattern) for pattern in patterns]
        inventory = cls(NFA.from_words(words), alphabet)
        return inventory.prefix_closure() if prefix_close else inventory

    @classmethod
    def universe(cls, schema: DatabaseSchema) -> "MigrationInventory":
        """``∅* Ω+^* ∅*``: every well-formed pattern over the schema's role sets."""
        role_sets = enumerate_role_sets(schema)
        non_empty = [rs for rs in role_sets if rs]
        from repro.formal import regex as rx

        body = rx.union_of(rx.Symbol(rs) for rs in non_empty)
        empty = rx.Symbol(EMPTY_ROLE_SET)
        expression = rx.Concat(rx.Concat(rx.Star(empty), rx.Star(body)), rx.Star(empty))
        return cls.from_regex(expression, alphabet=role_sets)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def automaton(self) -> NFA:
        """The underlying automaton."""
        return self._automaton

    @property
    def alphabet(self) -> Tuple[RoleSet, ...]:
        """The role-set alphabet, empty role set included."""
        return tuple(sorted(self._automaton.alphabet, key=lambda rs: (len(rs), sorted(rs))))

    def to_regex(self) -> Regex:
        """An equivalent regular expression (via state elimination)."""
        return self._automaton.to_regex()

    # ------------------------------------------------------------------ #
    # Language queries
    # ------------------------------------------------------------------ #
    def contains(self, pattern: PatternLike) -> bool:
        """Membership of a single migration pattern."""
        return self._automaton.accepts(_as_word(pattern))

    __contains__ = contains

    def is_empty(self) -> bool:
        """Return ``True`` if no pattern is allowed at all."""
        return self._automaton.is_empty()

    def sample(self, max_length: int = 6, limit: int = 25) -> List[MigrationPattern]:
        """A deterministic sample of member patterns (for reports and tests)."""
        return [
            MigrationPattern(word)
            for word in self._automaton.enumerate_words(max_length, limit=limit)
        ]

    def is_prefix_closed(self) -> bool:
        """``Init(L) ⊆ L``: required of inventories by Definition 3.3."""
        return decision.is_contained_in(
            operations.prefix_closure(self._automaton), self._automaton
        )

    def is_well_formed(self, schema: Optional[DatabaseSchema] = None) -> bool:
        """Containment in ``∅* Ω+^* ∅*`` (and prefix closure)."""
        if schema is not None:
            universe = MigrationInventory.universe(schema)
            if not self.is_subset_of(universe):
                return False
        else:
            # Check the shape symbolically over this inventory's own alphabet.
            non_empty = [rs for rs in self._automaton.alphabet if rs]
            from repro.formal import regex as rx

            body = rx.union_of(rx.Symbol(rs) for rs in non_empty)
            empty = rx.Symbol(RoleSet())
            shape = rx.Concat(rx.Concat(rx.Star(empty), rx.Star(body)), rx.Star(empty))
            if not decision.is_contained_in(self._automaton, shape.to_nfa(self._automaton.alphabet)):
                return False
        return self.is_prefix_closed()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def prefix_closure(self) -> "MigrationInventory":
        """``Init(L)``."""
        return MigrationInventory(operations.prefix_closure(self._automaton), self._automaton.alphabet)

    def union(self, other: "MigrationInventory") -> "MigrationInventory":
        """Language union."""
        return MigrationInventory(
            operations.union(self._automaton, other._automaton),
            self._automaton.alphabet | other._automaton.alphabet,
        )

    def intersection(self, other: "MigrationInventory") -> "MigrationInventory":
        """Language intersection."""
        return MigrationInventory(
            operations.intersection(self._automaton, other._automaton),
            self._automaton.alphabet | other._automaton.alphabet,
        )

    def concat(self, other: "MigrationInventory") -> "MigrationInventory":
        """Language concatenation."""
        return MigrationInventory(
            operations.concat(self._automaton, other._automaton),
            self._automaton.alphabet | other._automaton.alphabet,
        )

    def left_quotient_by(self, prefix: "MigrationInventory") -> "MigrationInventory":
        """``X^{-1} L`` where ``X`` is ``prefix`` (Definition 4.8)."""
        return MigrationInventory(
            operations.left_quotient(prefix._automaton, self._automaton),
            self._automaton.alphabet | prefix._automaton.alphabet,
        )

    def remove_repeats(self) -> "MigrationInventory":
        """The image under ``f_rr`` (non-repeating patterns)."""
        return MigrationInventory(operations.remove_repeats(self._automaton), self._automaton.alphabet)

    def remove_empty_initial(self) -> "MigrationInventory":
        """The image under ``f_rei``."""
        return MigrationInventory(
            operations.remove_empty_initial(self._automaton, EMPTY_ROLE_SET),
            self._automaton.alphabet,
        )

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def is_subset_of(self, other) -> bool:
        """Language containment (lazy product search, early exit)."""
        return decision.is_contained_in(self._automaton, coerce_inventory(other)._automaton)

    def subset_check(self, other) -> Tuple[bool, Optional[MigrationPattern]]:
        """Containment verdict and counterexample from one lazy exploration.

        ``other`` may be an inventory or a compiled MCL constraint.  Returns
        ``(holds, witness)`` where ``witness`` is a shortest pattern of this
        inventory that ``other`` forbids (``None`` when containment holds).
        :mod:`repro.core.satisfiability` uses this to avoid paying for a
        second product search just to extract the violation.
        """
        outcome = decision.containment_witness(self._automaton, coerce_inventory(other)._automaton)
        witness = None if outcome.witness is None else MigrationPattern(outcome.witness)
        return outcome.holds, witness

    def equals(self, other) -> bool:
        """Language equality (``other`` may be a compiled MCL constraint)."""
        return decision.are_equivalent(self._automaton, coerce_inventory(other)._automaton)

    def counterexample_against(self, other) -> Optional[MigrationPattern]:
        """A pattern of this inventory that ``other`` does not allow (or ``None``)."""
        witness = decision.counterexample(self._automaton, coerce_inventory(other)._automaton)
        return None if witness is None else MigrationPattern(witness)

    def __repr__(self) -> str:
        return f"MigrationInventory(alphabet={len(self._automaton.alphabet)} role sets)"


__all__ = ["MigrationInventory", "coerce_inventory"]
