"""Crash recovery walkthrough: journal every batch, lose the process, resume.

A monitor that watches a live migration-event stream accumulates verdict
state it cannot afford to lose: re-feeding a day of events after a crash
is exactly the cost the streaming engine exists to avoid.  The durable
session (:mod:`repro.engine.journal`) solves this with a write-ahead
journal plus periodic checkpoints.  This example

1. opens a **durable** stream session -- every fed batch is framed,
   CRC'd and flushed to a write-ahead log *before* it touches the
   in-memory session, and a checkpoint snapshot is cut every few
   thousand events,
2. feeds most of a banking event stream and then simulates a power loss:
   the process abandons the session without closing it and the last
   journal record is torn mid-write,
3. recovers the directory with ``engine.recover_stream`` -- the newest
   checkpoint is restored, the journal tail is replayed, and the torn
   record is truncated away,
4. shows that the recovered session holds **exactly the durable prefix**
   (every event whose append completed, none that was torn), and
5. resumes feeding from that prefix and ends verdict-identical to a
   monitor that never crashed.

Run with:  python examples/crash_recovery.py
"""

import glob
import os
import shutil
import tempfile

from repro.engine import HistoryCheckerEngine
from repro.workloads import generators

BATCH = 500
CHECKPOINT_EVERY = 4_000


def fresh_engine(suite):
    engine = HistoryCheckerEngine()
    for name, spec in suite.items():
        engine.add_spec(name, spec)
    return engine


def main() -> None:
    histories, events, suite = generators.conforming_banking_stream(
        seed=11, objects=2_000, mean_length=10
    )
    directory = tempfile.mkdtemp(prefix="repro-journal-")
    print(f"monitoring suite: {', '.join(suite)}")
    print(f"stream: {len(events)} events over {len(histories)} accounts")
    print(f"journal directory: {directory}\n")

    # ----------------------------------------------------------------- #
    # 1. + 2. A durable session, interrupted mid-stream.
    # ----------------------------------------------------------------- #
    engine = fresh_engine(suite)
    durable = engine.open_durable_stream(directory, checkpoint_every=CHECKPOINT_EVERY)
    # Crash ~60% in, one batch past a checkpoint: the tail segment then
    # holds exactly one event record for the torn write to land on.
    crash_at = (len(events) * 3 // 5) // CHECKPOINT_EVERY * CHECKPOINT_EVERY + BATCH
    for start in range(0, crash_at, BATCH):
        durable.feed_events(events[start : start + BATCH])
    stats = durable.stats()
    print(
        f"fed {durable.events_seen} events before the crash: "
        f"{stats['records']} journal records, {stats['checkpoints']} checkpoints, "
        f"{stats['bytes'] / 1024:.0f}KiB journaled"
    )

    # Power loss: no close(), and the write of the final record is torn.
    # (Every *completed* append was already flushed, so only the record
    # that was mid-write can be damaged -- that is the WAL guarantee.)
    tail = max(glob.glob(os.path.join(directory, "wal-*.log")))
    torn = os.path.getsize(tail) - 7
    os.truncate(tail, torn)
    del durable
    print(f"crash: session abandoned, {os.path.basename(tail)} torn at byte {torn}\n")

    # ----------------------------------------------------------------- #
    # 3. + 4. Recover: restore the newest checkpoint, replay the tail.
    # ----------------------------------------------------------------- #
    engine = fresh_engine(suite)  # a brand-new process would start here
    recovered = engine.recover_stream(directory)
    print(
        f"recovered {recovered.events_seen} events "
        f"({recovered.truncated_records} torn record dropped)"
    )
    assert recovered.events_seen == crash_at - BATCH, "durable prefix is exact"

    # The recovered state matches a monitor fed the same prefix directly.
    oracle = fresh_engine(suite).open_stream()
    oracle.feed_events(events[: recovered.events_seen])
    assert recovered.all_verdicts() == oracle.all_verdicts()
    print("verdicts match an uninterrupted monitor fed the same prefix\n")

    # ----------------------------------------------------------------- #
    # 5. Resume from the durable prefix and finish the stream.
    # ----------------------------------------------------------------- #
    for start in range(recovered.events_seen, len(events), BATCH):
        recovered.feed_events(events[start : start + BATCH])
    recovered.close()

    oracle.feed_events(events[oracle.events_seen :])
    assert recovered.all_verdicts() == oracle.all_verdicts()
    for name in suite:
        verdicts = recovered.verdicts(name)
        satisfied = sum(verdicts.values())
        print(f"  {name:<16} {satisfied}/{len(verdicts)} accounts conforming")
    print("\nfinal verdicts are identical to a run that never crashed")

    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
