"""Tests for the SL migration-pattern analysis (Theorem 3.2, part 1)."""

import pytest

from repro.core.inventory import MigrationInventory
from repro.core.rolesets import EMPTY_ROLE_SET
from repro.core.sl_analysis import DELETED, PATTERN_KINDS, SOURCE, SLMigrationAnalysis
from repro.language.transactions import TransactionSchema
from repro.model.errors import AnalysisError
from repro.workloads import banking, phd, three_class, university


class TestExample34:
    """Experiment E5: the pattern families of the university transactions."""

    def test_migration_graph_shape(self, university_analysis):
        graph = university_analysis.migration_graph()
        stats = graph.stats()
        # Only the [S] and [G] abstraction cells are reachable.
        assert stats["vertices"] == 2
        assert stats["creation_edges"] >= 1
        assert stats["deletion_edges"] >= 1
        labels = {vertex.role_set for vertex in graph.vertices}
        assert labels == {university.ROLE_S, university.ROLE_G}

    @pytest.mark.parametrize("kind", PATTERN_KINDS)
    def test_families_match_the_paper(self, university_analysis, kind):
        family = university_analysis.pattern_family(kind)
        expected = university.expected_families()[kind]
        assert family.equals(expected), kind

    def test_family_inclusions(self, university_families):
        # L_lazy ⊆ L_pro ⊆ L and L_imm ⊆ L (Section 3).
        assert university_families["lazy"].is_subset_of(university_families["proper"])
        assert university_families["proper"].is_subset_of(university_families["all"])
        assert university_families["immediate_start"].is_subset_of(university_families["all"])

    def test_satisfies_and_generates_helpers(self, university_analysis):
        everything = MigrationInventory.universe(university.schema())
        assert university_analysis.satisfies(everything)
        assert not university_analysis.generates(everything)
        own = university_analysis.pattern_family("all")
        assert university_analysis.characterizes(own)

    def test_sample_patterns(self, university_analysis):
        sample = university_analysis.sample_patterns("immediate_start", max_length=3, limit=5)
        assert sample and all(p.is_immediate_start or len(p) == 0 for p in sample)


class TestOtherWorkloads:
    def test_banking_families_satisfy_the_checking_constraint(self, banking_analysis):
        inventory = banking.checking_role_inventory()
        for kind in PATTERN_KINDS:
            assert banking_analysis.pattern_family(kind).is_subset_of(inventory), kind

    def test_banking_violates_the_no_downgrade_constraint(self, banking_analysis):
        inventory = banking.no_downgrade_inventory()
        assert not banking_analysis.pattern_family("all").is_subset_of(inventory)

    def test_phd_guarded_matches_paper_proper_family(self, phd_guarded_analysis):
        expected = phd.expected_proper_family()
        assert phd_guarded_analysis.pattern_family("proper").equals(expected)

    def test_phd_as_printed_allows_the_extra_role_set(self, phd_analysis):
        family = phd_analysis.pattern_family("proper")
        # The unguarded transactions can stack SCREENED/CANDIDATE roles.
        assert not family.equals(phd.expected_proper_family())

    def test_cycle_transactions_characterize_example_36(self, cycle_analysis):
        # The hand-built transactions characterize the P(QQP)* inventory
        # exactly, up to the position of deletions (EXPERIMENTS.md, E7).
        exact = three_class.cycle_inventory_exact()
        assert cycle_analysis.pattern_family("all").equals(exact)
        # Every pattern without a deletion obeys the paper's stated inventory.
        stated = three_class.cycle_inventory()
        family = cycle_analysis.pattern_family("all")
        for pattern in family.sample(max_length=5, limit=30):
            if all(role for role in pattern):
                assert stated.contains(pattern)

    def test_branch_transactions_first_steps_match_example_36(self, branch_analysis):
        family = branch_analysis.pattern_family("all")
        # Both branches of ∅*(PQ* ∪ QP*)∅* start as promised ...
        assert family.contains([three_class.ROLE_P])
        assert family.contains([three_class.ROLE_Q])
        # ... but under the Definition 2.5 specialize semantics the printed
        # transaction re-adds the other role on the next application, so the
        # schema does not generate the full inventory (EXPERIMENTS.md, E7).
        assert not three_class.branch_inventory().is_subset_of(family)


class TestMechanics:
    def test_empty_transaction_schema_only_produces_the_empty_pattern(self):
        schema = TransactionSchema(university.schema(), [])
        analysis = SLMigrationAnalysis(schema)
        for kind in PATTERN_KINDS:
            family = analysis.pattern_family(kind)
            assert family.contains([])
            assert not family.contains([EMPTY_ROLE_SET])

    def test_unknown_kind_rejected(self, university_analysis):
        with pytest.raises(AnalysisError):
            university_analysis.pattern_family("bogus")

    def test_multi_component_schema_requires_component(self):
        from repro.model.schema import DatabaseSchema
        from repro.language.transactions import Transaction

        schema = DatabaseSchema({"A", "B"}, set(), {"A": {"X"}, "B": {"Y"}})
        transactions = TransactionSchema(schema, [Transaction("noop", [])])
        with pytest.raises(AnalysisError):
            SLMigrationAnalysis(transactions)
        analysis = SLMigrationAnalysis(transactions, component={"A"})
        assert analysis.component == frozenset({"A"})
        with pytest.raises(AnalysisError):
            SLMigrationAnalysis(transactions, component={"A", "B"})

    def test_expand_vertex_is_cached(self, university_analysis):
        graph = university_analysis.migration_graph()
        vertex = graph.vertices[0]
        first = university_analysis.expand_vertex(vertex)
        second = university_analysis.expand_vertex(vertex)
        assert first is second

    def test_edges_refer_to_known_endpoints(self, university_analysis):
        graph = university_analysis.migration_graph()
        vertices = set(graph.vertices) | {SOURCE, DELETED}
        for edge in graph.edges:
            assert edge.source in vertices
            assert edge.target in vertices
            assert edge.transaction in university.transactions().names()
