"""Setup shim: keeps `pip install -e .` working on environments whose
setuptools lacks PEP 660 support (no `wheel` package available offline).
Metadata lives in setup.cfg; pytest configuration in pyproject.toml."""

from setuptools import setup

setup()
