"""Shared fixtures.

The static analyses are deterministic but not free (a few seconds for the
richer schemas), so they are computed once per test session and shared.
"""

from __future__ import annotations

import pytest

from repro.core.sl_analysis import SLMigrationAnalysis
from repro.workloads import banking, phd, three_class, university


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-rounds",
        type=int,
        default=1,
        help="multiplier for the property-suite iteration counts (tier-1 runs 1; "
        "the nightly CI job runs 10)",
    )


@pytest.fixture(scope="session")
def fuzz_rounds(request) -> int:
    """How many times the base iteration count the fuzz suites should run."""
    return max(1, request.config.getoption("--fuzz-rounds"))


@pytest.fixture(scope="session")
def university_transactions():
    return university.transactions()


@pytest.fixture(scope="session")
def university_analysis(university_transactions):
    return SLMigrationAnalysis(university_transactions)


@pytest.fixture(scope="session")
def university_families(university_analysis):
    return university_analysis.pattern_families()


@pytest.fixture(scope="session")
def banking_analysis():
    return SLMigrationAnalysis(banking.transactions())


@pytest.fixture(scope="session")
def phd_analysis():
    return SLMigrationAnalysis(phd.transactions())


@pytest.fixture(scope="session")
def phd_guarded_analysis():
    return SLMigrationAnalysis(phd.guarded_transactions())


@pytest.fixture(scope="session")
def cycle_analysis():
    return SLMigrationAnalysis(three_class.cycle_transactions())


@pytest.fixture(scope="session")
def branch_analysis():
    return SLMigrationAnalysis(three_class.branch_transactions())
